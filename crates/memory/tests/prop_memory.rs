//! Property-based tests for the memory substrate: the sparse store
//! behaves like a flat byte array, RMW ops match their scalar semantics,
//! DRAM timing is causal, and the KV store behaves like a map.

use edm_memory::dram::{AccessKind, DramConfig, DramTiming};
use edm_memory::rmw::{RmwOp, RmwRequest};
use edm_memory::{KvStore, Store};
use edm_sim::Time;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The sparse store agrees with a reference HashMap<addr, byte> under
    /// arbitrary interleaved writes and reads.
    #[test]
    fn store_matches_reference(
        writes in proptest::collection::vec(
            (0u64..10_000, proptest::collection::vec(any::<u8>(), 1..64)),
            1..50
        ),
        probes in proptest::collection::vec((0u64..10_000, 1usize..64), 1..20),
    ) {
        let mut store = Store::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for (addr, data) in &writes {
            store.write(*addr, data);
            for (i, &b) in data.iter().enumerate() {
                reference.insert(addr + i as u64, b);
            }
        }
        for &(addr, len) in &probes {
            let got = store.read(addr, len);
            for (i, &b) in got.iter().enumerate() {
                let want = reference.get(&(addr + i as u64)).copied().unwrap_or(0);
                prop_assert_eq!(b, want, "mismatch at {}", addr + i as u64);
            }
        }
    }

    /// Every RMW opcode matches its scalar definition and returns the
    /// original value.
    #[test]
    fn rmw_scalar_semantics(initial in any::<u64>(), operand in any::<u64>(), operand2 in any::<u64>()) {
        let cases: Vec<(RmwOp, u64)> = vec![
            (RmwOp::FetchAdd(operand), initial.wrapping_add(operand)),
            (RmwOp::Swap(operand), operand),
            (RmwOp::And(operand), initial & operand),
            (RmwOp::Or(operand), initial | operand),
            (RmwOp::Xor(operand), initial ^ operand),
            (RmwOp::Min(operand), initial.min(operand)),
            (RmwOp::Max(operand), initial.max(operand)),
            (
                RmwOp::CompareAndSwap { expected: operand, desired: operand2 },
                if initial == operand { operand2 } else { initial },
            ),
        ];
        for (op, want_stored) in cases {
            let mut store = Store::new();
            store.write_u64(64, initial);
            let original = RmwRequest { addr: 64, op }.execute(&mut store);
            prop_assert_eq!(original, initial, "{:?} must return the original", op);
            prop_assert_eq!(store.read_u64(64), want_stored, "{:?} stored value", op);
        }
    }

    /// DRAM timing is causal and busy-consistent: completions never
    /// precede issue, and per-bank accesses never overlap.
    #[test]
    fn dram_timing_causal(
        accesses in proptest::collection::vec((0u64..1_000_000, 1usize..512, 0u64..10_000), 1..60)
    ) {
        let mut dram = DramTiming::new(DramConfig::ddr4_2400());
        let mut issued = Time::ZERO;
        let mut completions: Vec<(u64, Time, Time)> = Vec::new(); // (bank-ish addr, start, complete)
        for &(addr, len, gap) in &accesses {
            issued += edm_sim::Duration::from_ps(gap);
            let t = dram.access(issued, addr, len, AccessKind::Read);
            prop_assert!(t.start >= issued, "service before issue");
            prop_assert!(t.complete > t.start, "zero-time access");
            completions.push((addr / 8192 % 16, t.start, t.complete));
        }
        // Same-bank accesses are serialized.
        for i in 0..completions.len() {
            for j in i + 1..completions.len() {
                let (b1, s1, c1) = completions[i];
                let (b2, s2, c2) = completions[j];
                if b1 == b2 {
                    prop_assert!(
                        c1 <= s2 || c2 <= s1,
                        "bank {b1} overlap: [{s1},{c1}] vs [{s2},{c2}]"
                    );
                }
            }
        }
    }

    /// The KV store behaves like a HashMap under arbitrary put/get
    /// sequences (within capacity).
    #[test]
    fn kvstore_matches_map(
        ops in proptest::collection::vec((0u64..64, proptest::collection::vec(any::<u8>(), 0..32), any::<bool>()), 1..80)
    ) {
        let mut kv = KvStore::new(256, 32);
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        for (key, value, is_put) in &ops {
            if *is_put && !value.is_empty() {
                kv.put(Time::ZERO, *key, value).expect("capacity ample");
                reference.insert(*key, value.clone());
            } else {
                match (kv.get(Time::ZERO, *key), reference.get(key)) {
                    (Ok(resp), Some(want)) => prop_assert_eq!(&resp.value, want),
                    (Err(_), None) => {}
                    (got, want) => prop_assert!(
                        false,
                        "kv/get mismatch for key {key}: {got:?} vs {want:?}"
                    ),
                }
            }
        }
        prop_assert_eq!(kv.len(), reference.len() as u64);
    }
}
