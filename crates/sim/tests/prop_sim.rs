//! Property-based tests for the DES engine, time arithmetic, RNG, and
//! statistics — including the calendar-queue/binary-heap pop-order
//! equivalence pins.

use edm_sim::{
    Bandwidth, BinaryHeapEventQueue, Duration, Engine, EventQueue, Rng, Summary, Time, World,
};
use proptest::prelude::*;

/// Applies one schedule-or-pop step to both queues and checks that every
/// observable (`peek_time`, `pop` result, `len`) stays bit-identical.
fn lockstep_op(
    cal: &mut EventQueue<u32>,
    reference: &mut BinaryHeapEventQueue<u32>,
    op: Option<(Time, u32)>,
) -> Result<(), TestCaseError> {
    match op {
        Some((t, tag)) => {
            cal.schedule(t, tag);
            reference.schedule(t, tag);
        }
        None => {
            prop_assert_eq!(cal.peek_time(), reference.peek_time());
            prop_assert_eq!(cal.pop(), reference.pop());
        }
    }
    prop_assert_eq!(cal.len(), reference.len());
    prop_assert_eq!(cal.is_empty(), reference.is_empty());
    Ok(())
}

/// Drains both queues, requiring identical `(time, tag)` sequences.
fn lockstep_drain(
    cal: &mut EventQueue<u32>,
    reference: &mut BinaryHeapEventQueue<u32>,
) -> Result<(), TestCaseError> {
    loop {
        prop_assert_eq!(cal.peek_time(), reference.peek_time());
        let (a, b) = (cal.pop(), reference.pop());
        prop_assert_eq!(a, b);
        if a.is_none() {
            return Ok(());
        }
    }
}

/// A world that records the times at which events fire.
#[derive(Default)]
struct Recorder {
    fired: Vec<(Time, u32)>,
}

impl World for Recorder {
    type Event = u32;
    fn handle(&mut self, now: Time, ev: u32, _q: &mut EventQueue<u32>) {
        self.fired.push((now, ev));
    }
}

proptest! {
    /// Events always fire in non-decreasing time order, with FIFO order
    /// among equal timestamps.
    #[test]
    fn engine_dispatch_is_monotone_and_stable(
        times in proptest::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut eng = Engine::new(Recorder::default());
        for (i, &t) in times.iter().enumerate() {
            eng.queue_mut().schedule(Time::from_ps(t), i as u32);
        }
        eng.run();
        let fired = &eng.world().fired;
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                // Same instant: scheduling (insertion) order preserved.
                let (a, b) = (w[0].1 as usize, w[1].1 as usize);
                prop_assert_eq!(times[a], times[b]);
                prop_assert!(a < b, "FIFO violated for equal timestamps");
            }
        }
    }

    /// The calendar queue's pop order is bit-identical to the dense
    /// binary-heap reference under random schedule/pop interleavings that
    /// mix time scales (tight ties, ns-range, and far-future outliers that
    /// must ride the overflow heap). Pops may outnumber schedules, so
    /// empty-queue behavior is exercised too.
    #[test]
    fn calendar_queue_matches_reference(
        ops in proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..400)
    ) {
        let mut cal = EventQueue::new();
        let mut reference = BinaryHeapEventQueue::new();
        let mut tag = 0u32;
        for &(op, raw) in &ops {
            let step = match op {
                // Two pop weights out of six keep the queue growing on
                // average so resizes in both directions get exercised.
                0 | 1 => None,
                2 => Some(Time::from_ps(raw % 8)),          // adversarial ties
                3 => Some(Time::from_ps(raw % 4_096)),      // one-year scale
                4 => Some(Time::from_ps(raw)),              // broad spread
                _ => Some(Time::from_us(1_000_000 + raw)),  // far future
            };
            lockstep_op(&mut cal, &mut reference, step.map(|t| {
                tag += 1;
                (t, tag)
            }))?;
        }
        lockstep_drain(&mut cal, &mut reference)?;
    }

    /// Adversarial same-time bursts: many events collapse onto few
    /// distinct instants (single-bucket degeneracy once the calendar
    /// engages). FIFO order among ties must survive every resize.
    #[test]
    fn calendar_queue_same_time_bursts(
        bursts in proptest::collection::vec((0u64..4, 1usize..48), 1..24),
        pops_between in 0usize..8
    ) {
        let mut cal = EventQueue::new();
        let mut reference = BinaryHeapEventQueue::new();
        let mut tag = 0u32;
        for &(instant, count) in &bursts {
            for _ in 0..count {
                tag += 1;
                lockstep_op(&mut cal, &mut reference, Some((Time::from_ns(instant), tag)))?;
            }
            for _ in 0..pops_between {
                lockstep_op(&mut cal, &mut reference, None)?;
            }
        }
        lockstep_drain(&mut cal, &mut reference)?;
    }

    /// Resize boundaries: alternating schedule/pop phases whose sizes
    /// sweep across the engage, grow, shrink, and disengage thresholds.
    /// Each phase's times come from a seeded RNG so phases land at
    /// different magnitudes (forcing year rebases and rewinds).
    #[test]
    fn calendar_queue_survives_resize_boundaries(
        phases in proptest::collection::vec((1usize..96, 0usize..96, 0u64..u64::MAX), 1..16)
    ) {
        let mut cal = EventQueue::new();
        let mut reference = BinaryHeapEventQueue::new();
        let mut tag = 0u32;
        for &(nsched, npop, seed) in &phases {
            let mut rng = Rng::seed_from(seed);
            let base = rng.below(1 << 40);
            for _ in 0..nsched {
                tag += 1;
                let t = Time::from_ps(base + rng.below(1 << 24));
                lockstep_op(&mut cal, &mut reference, Some((t, tag)))?;
            }
            for _ in 0..npop {
                lockstep_op(&mut cal, &mut reference, None)?;
            }
        }
        lockstep_drain(&mut cal, &mut reference)?;
    }

    /// Keyed scheduling stays bit-identical to the heap reference under
    /// random (time, ord) mixes, including plain (ord 0) events riding
    /// alongside keyed ones and adversarial same-(time, ord) ties that
    /// must fall back to FIFO.
    #[test]
    fn calendar_queue_ordered_matches_reference(
        ops in proptest::collection::vec((0u8..6, 0u64..4_096, 0u64..8), 1..400)
    ) {
        let mut cal = EventQueue::new();
        let mut reference = BinaryHeapEventQueue::new();
        let mut tag = 0u32;
        for &(op, raw, ord) in &ops {
            match op {
                0 => {
                    prop_assert_eq!(cal.peek_time(), reference.peek_time());
                    prop_assert_eq!(cal.pop(), reference.pop());
                }
                1 => {
                    // Plain schedule (ord 0) mixed in.
                    tag += 1;
                    cal.schedule(Time::from_ps(raw % 64), tag);
                    reference.schedule(Time::from_ps(raw % 64), tag);
                }
                _ => {
                    tag += 1;
                    // Few distinct instants: (time, ord) collisions are
                    // common, exercising the FIFO fallback.
                    let t = Time::from_ps(raw % 64);
                    cal.schedule_ordered(t, ord, tag);
                    reference.schedule_ordered(t, ord, tag);
                }
            }
            prop_assert_eq!(cal.len(), reference.len());
        }
        lockstep_drain(&mut cal, &mut reference)?;
    }

    /// Substream derivation is order-independent: `Rng::stream(seed, i)`
    /// yields the same sequence no matter how many sibling streams exist
    /// or in which order they are created, and distinct indices give
    /// distinct sequences.
    #[test]
    fn rng_streams_are_independent_of_sibling_order(
        seed in any::<u64>(),
        indices in proptest::collection::vec(0u64..64, 2..8),
    ) {
        let draw = |i: u64| {
            let mut r = Rng::stream(seed, i);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        // Forward and reverse creation orders agree per index.
        let forward: Vec<_> = indices.iter().map(|&i| draw(i)).collect();
        let reverse: Vec<_> = indices.iter().rev().map(|&i| draw(i)).collect();
        for (f, r) in forward.iter().zip(reverse.iter().rev()) {
            prop_assert_eq!(f, r);
        }
        for (a, &ia) in forward.iter().zip(&indices) {
            for (b, &ib) in forward.iter().zip(&indices) {
                if ia != ib {
                    prop_assert_ne!(a, b, "streams {} and {} collided", ia, ib);
                }
            }
        }
    }

    /// Time/Duration arithmetic is consistent: (t + d) - t == d and
    /// ordering follows the raw picosecond values.
    #[test]
    fn time_arithmetic_consistent(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = Time::from_ps(base);
        let d = Duration::from_ps(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d).saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(t + d), Duration::ZERO);
    }

    /// Bandwidth transmission time is additive within rounding: the time
    /// for a+b bytes differs from the sum of parts by at most 1 ps.
    #[test]
    fn bandwidth_tx_time_nearly_additive(
        gbps in 1u64..800,
        a in 1u64..1_000_000,
        b in 1u64..1_000_000,
    ) {
        let bw = Bandwidth::from_gbps(gbps);
        let whole = bw.tx_time_bits(a + b).as_ps();
        let parts = bw.tx_time_bits(a).as_ps() + bw.tx_time_bits(b).as_ps();
        prop_assert!(parts >= whole);
        prop_assert!(parts - whole <= 1, "rounding drift {}", parts - whole);
    }

    /// `bytes_in` inverts `tx_time_bytes` exactly for whole-byte loads.
    #[test]
    fn bandwidth_inversion(gbps in 1u64..800, n in 1u64..10_000_000) {
        let bw = Bandwidth::from_gbps(gbps);
        prop_assert_eq!(bw.bytes_in(bw.tx_time_bytes(n)), n);
    }

    /// The RNG's bounded sampler never exceeds its bound and two
    /// generators with the same seed agree.
    #[test]
    fn rng_bounds_and_determinism(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..50 {
            let x = a.below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.below(bound));
        }
    }

    /// Summary percentiles are bracketed by min and max, and the mean lies
    /// within [min, max].
    #[test]
    fn summary_order_statistics(xs in proptest::collection::vec(-1e9f64..1e9, 1..300)) {
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        let (lo, hi) = (s.min(), s.max());
        prop_assert!(lo <= hi);
        prop_assert!(s.mean() >= lo - 1e-6 && s.mean() <= hi + 1e-6);
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v >= lo && v <= hi, "p{p} = {v} outside [{lo}, {hi}]");
        }
        prop_assert!(s.percentile(25.0) <= s.percentile(75.0));
    }

    /// Empirical CDF sampling stays within the support and the quantile
    /// function is monotone.
    #[test]
    fn cdf_quantile_monotone(seed in any::<u64>()) {
        use edm_sim::rng::EmpiricalCdf;
        let cdf = EmpiricalCdf::new(vec![(64, 0.4), (1024, 0.8), (65536, 1.0)]).unwrap();
        let mut rng = Rng::seed_from(seed);
        let mut prev = 0u64;
        for i in 0..=20 {
            let v = cdf.quantile(i as f64 / 20.0);
            prop_assert!(v >= prev, "quantile not monotone");
            prev = v;
        }
        for _ in 0..100 {
            let v = cdf.sample(&mut rng);
            prop_assert!((1..=65536).contains(&v));
        }
    }
}
