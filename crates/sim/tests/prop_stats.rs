//! Property pins for the bounded-memory statistics layer: the streaming
//! [`LogHistogram`] must agree with the exact, sample-retaining
//! [`Summary`] reference on every percentile within the documented
//! relative bucket error, under arbitrary value distributions, and the
//! shard-merge path must be indistinguishable from recording into one
//! histogram.

use edm_sim::{Duration, LogHistogram, Summary, Throughput, Time};
use proptest::prelude::*;

proptest! {
    /// For any sample set, every percentile from the streaming histogram
    /// brackets the exact nearest-rank value from above within
    /// `MAX_RELATIVE_ERROR` (and exactly, for values below 64).
    #[test]
    fn log_histogram_percentiles_within_documented_error(
        values in proptest::collection::vec(any::<u64>(), 1..500),
        permilles in proptest::collection::vec(0u32..=1000, 1..8),
    ) {
        let mut h = LogHistogram::new();
        let mut exact = Summary::new();
        for &v in &values {
            // Cap so the f64 Summary stays integer-exact.
            let v = v % (1u64 << 50);
            h.record(v);
            exact.record(v as f64);
        }
        let drawn = permilles.iter().map(|&pm| pm as f64 / 10.0);
        for p in drawn.chain([50.0, 99.0, 99.9, 99.99]) {
            let approx = h.percentile(p);
            let truth = exact.percentile(p);
            prop_assert!(approx as f64 >= truth,
                "p{}: streaming {} below exact {}", p, approx, truth);
            prop_assert!(approx as f64 <= truth * (1.0 + LogHistogram::MAX_RELATIVE_ERROR),
                "p{}: streaming {} above error bound on exact {}", p, approx, truth);
            if truth < 64.0 {
                prop_assert_eq!(approx as f64, truth, "sub-64 values must be exact");
            }
        }
    }

    /// Merging per-shard histograms gives bucket-for-bucket the same
    /// answer as recording the concatenated stream into one histogram.
    #[test]
    fn log_histogram_merge_is_exact(
        shards in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..100),
            1..5,
        ),
    ) {
        let mut combined = LogHistogram::new();
        let mut merged = LogHistogram::new();
        for shard in &shards {
            let mut local = LogHistogram::new();
            for &v in shard {
                combined.record(v);
                local.record(v);
            }
            merged.merge(&local);
        }
        prop_assert_eq!(merged.count(), combined.count());
        prop_assert_eq!(merged.max(), combined.max());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            prop_assert_eq!(merged.percentile(p), combined.percentile(p));
        }
    }

    /// Windowed throughput totals are conserved across arbitrary event
    /// streams and shard merges.
    #[test]
    fn throughput_conserves_totals(
        events in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 0..200),
        window_ns in 1u64..10_000,
        split in 0usize..200,
    ) {
        let w = Duration::from_ns(window_ns);
        let mut all = Throughput::new(w);
        let mut a = Throughput::new(w);
        let mut b = Throughput::new(w);
        let split = split.min(events.len());
        for (i, &(at_ns, bytes)) in events.iter().enumerate() {
            let at = Time::from_ns(at_ns);
            all.record(at, bytes);
            if i < split { a.record(at, bytes) } else { b.record(at, bytes) }
        }
        a.merge(&b);
        prop_assert_eq!(a.total_ops(), all.total_ops());
        prop_assert_eq!(a.total_bytes(), all.total_bytes());
        prop_assert_eq!(a.windows(), all.windows());
        let per_window_ops: u64 = (0..all.windows()).map(|i| all.ops_in(i)).sum();
        prop_assert_eq!(per_window_ops, all.total_ops());
        for i in 0..all.windows() {
            prop_assert_eq!(a.ops_in(i), all.ops_in(i));
            prop_assert_eq!(a.bytes_in(i), all.bytes_in(i));
        }
    }
}
