//! Long-horizon hold-model regression test for the calendar queue.
//!
//! The hold pattern (always reschedule the popped minimum a random gap
//! ahead) is adversarial for calendar queues in a way short random
//! scripts are not: the population *compresses* — only the minimum ever
//! jumps, so the live span shrinks toward a few gaps while `len` never
//! crosses a resize threshold — and a naive implementation degenerates
//! to a single over-long bucket (this repo's first draft did exactly
//! that, at ~10x the per-op cost). The walk-triggered rebuild exists for
//! this case; this test pins the *correctness* of the queue across many
//! such rebuilds, year advances, and overflow transits by running the
//! pattern in lockstep with the binary-heap reference.

use edm_sim::{BinaryHeapEventQueue, Duration, EventQueue, Rng, Time};

#[test]
fn hold_lockstep_stays_bit_identical() {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut r: BinaryHeapEventQueue<u64> = BinaryHeapEventQueue::new();
    let mut rng = Rng::seed_from(0xED31);
    let mut t = Time::ZERO;
    for i in 0..1024u64 {
        t += Duration::from_ps(rng.below(10_240));
        q.schedule(t, i);
        r.schedule(t, i);
    }
    // ~60 population turnovers: enough to compress the span, cross
    // several year boundaries, and fire multiple walk-triggered rebuilds.
    for op in 0..60_000u64 {
        assert_eq!(q.peek_time(), r.peek_time(), "peek diverged at op {op}");
        let a = q.pop().unwrap();
        let b = r.pop().unwrap();
        assert_eq!(a, b, "pop diverged at op {op}");
        let nt = a.0 + Duration::from_ps(rng.below(10_240));
        q.schedule(nt, a.1);
        r.schedule(nt, a.1);
    }
}
