//! Statistics collection for experiment harnesses.
//!
//! Two percentile collectors with an explicit division of labor:
//!
//! * [`Summary`] retains **every sample** and answers *exact*
//!   nearest-rank percentiles. Memory is O(total samples), so it is the
//!   reference implementation — use it for small runs and as the oracle
//!   that pins [`LogHistogram`]'s error bound in tests.
//! * [`LogHistogram`] keeps a **fixed ~30 KB** of log-spaced buckets
//!   regardless of sample count, is mergeable across shards, and bounds
//!   its percentile error by the relative bucket width (< 2⁻⁶ ≈ 1.6 %).
//!   Use it whenever the sample count is unbounded — e.g. the streaming
//!   million-flow harnesses, where retaining per-flow samples would make
//!   RSS scale with *total* flows instead of *active* flows.
//!
//! [`Throughput`] complements them with a windowed completion counter
//! (ops and bytes per fixed window of simulated time).

use crate::time::{Duration, Time};

/// A sample-collecting summary: mean, variance, min/max, and exact
/// nearest-rank percentiles.
///
/// Samples are **retained**: memory is O(count), and `percentile` sorts
/// (amortized) — fine for the classic few-thousand-flow experiments, and
/// exactly what makes it the oracle for [`LogHistogram`]'s error-bound
/// tests. Do *not* feed it an unbounded stream; for million-flow runs
/// record into a [`LogHistogram`] instead and keep RSS independent of
/// total sample count.
///
/// ```
/// use edm_sim::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.percentile(50.0), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Records a duration, in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_ns_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean. Zero if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population variance. Zero if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample. Zero if empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_if_empty(self.samples.is_empty())
    }

    /// Maximum sample. Zero if empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`. Zero if empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample recorded"));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }
}

// Small private helper so `min()` returns 0.0 when empty without branching
// twice; keeps the public surface clean.
trait PipeIfEmpty {
    fn pipe_if_empty(self, empty: bool) -> f64;
}
impl PipeIfEmpty for f64 {
    fn pipe_if_empty(self, empty: bool) -> f64 {
        if empty {
            0.0
        } else {
            self
        }
    }
}

/// A fixed-width histogram over `[0, width * buckets)` with an overflow
/// bucket, for latency distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `buckets == 0`.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < 0.0 {
            self.overflow += 1;
            return;
        }
        let idx = (x / self.width) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Observations outside the bucketed range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterator over `(bucket_lower_bound, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * self.width, c))
    }
}

/// Sub-bucket resolution bits for [`LogHistogram`]: each power-of-two
/// octave is split into `2^SUB_BITS = 64` linear sub-buckets, so the
/// relative bucket width — and therefore the percentile error bound — is
/// `2^-SUB_BITS = 1/64`.
const SUB_BITS: u32 = 6;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count: one linear region `[0, 64)` plus `63 - SUB_BITS + 1`
/// octaves of `64` sub-buckets each (covers all of `u64`).
const LOG_BUCKETS: usize = SUB + (63 - SUB_BITS as usize + 1) * SUB;

/// A log-bucketed histogram over `u64` values with bounded memory and
/// bounded relative error — the streaming counterpart to [`Summary`].
///
/// Values below 64 land in exact unit-width buckets; larger values fall
/// into one of 64 linear sub-buckets per power-of-two octave (the
/// HDR-histogram layout). [`percentile`](LogHistogram::percentile)
/// returns the *inclusive upper bound* of the bucket holding the
/// nearest-rank sample, so the reported quantile `q̂` satisfies
/// `q ≤ q̂ < q · (1 + 1/64)` relative to the exact nearest-rank value
/// `q` (and is exact for values `< 64`). Memory is a fixed
/// `3776 × 8 B ≈ 30 KB` regardless of sample count, and histograms from
/// independent shards [`merge`](LogHistogram::merge) by bucket-wise
/// addition with no loss beyond the bucketing itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Upper bound on the relative error of [`percentile`](Self::percentile):
    /// the reported value overshoots the exact nearest-rank sample by less
    /// than this fraction of the sample's value.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

    /// Creates an empty histogram (all ~3.7k buckets zeroed, ≈30 KB).
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; LOG_BUCKETS],
            total: 0,
            max: 0,
        }
    }

    /// Bucket index for a value: identity below `SUB`, then
    /// `(octave << SUB_BITS) | sub` where `sub` is the top `SUB_BITS`
    /// bits after the leading one.
    fn bucket_index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let octave = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (octave << SUB_BITS) | sub
    }

    /// Smallest value mapping to bucket `i` (inverse of `bucket_index`).
    fn bucket_low(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        let octave = (i >> SUB_BITS) as u32;
        let sub = (i & (SUB - 1)) as u64;
        (SUB as u64 + sub) << (octave - 1)
    }

    /// Inclusive upper bound of bucket `i`.
    fn bucket_high(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        let octave = (i >> SUB_BITS) as u32;
        Self::bucket_low(i) + ((1u64 << (octave - 1)) - 1)
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Records a duration, in picoseconds (the simulator's native unit,
    /// so integer latencies bucket exactly).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_ps());
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no values have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest value recorded (exact, not bucketed). Zero if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (nearest-rank over buckets), `p` in
    /// `[0, 100]`. Returns the inclusive upper bound of the bucket
    /// containing the nearest-rank sample — never less than the exact
    /// value, and within [`MAX_RELATIVE_ERROR`](Self::MAX_RELATIVE_ERROR)
    /// above it. Zero if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Cap at the true max so p100 is exact.
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Bucket-midpoint estimate of the mean — the composition helper the
    /// approximate engine's reports use. Each sample contributes the
    /// midpoint of its bucket, so the estimate sits within
    /// [`MAX_RELATIVE_ERROR`](Self::MAX_RELATIVE_ERROR)`/2` of the true
    /// mean (exact below 64). Zero if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let mid = (Self::bucket_low(i) + Self::bucket_high(i)) as f64 / 2.0;
                sum += mid * c as f64;
            }
        }
        sum / self.total as f64
    }

    /// Adds another histogram's counts into this one (shard merge).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

/// Windowed throughput accumulator: completions and bytes per fixed
/// window of simulated time.
///
/// Memory is O(simulated span / window) — independent of how many flows
/// pass through — and two accumulators with the same window merge by
/// element-wise addition, so per-shard accumulators combine exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Throughput {
    window: Duration,
    ops: Vec<u64>,
    bytes: Vec<u64>,
    total_ops: u64,
    total_bytes: u64,
}

impl Throughput {
    /// Creates an accumulator with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration) -> Self {
        assert!(window > Duration::ZERO, "window must be positive");
        Throughput {
            window,
            ops: Vec::new(),
            bytes: Vec::new(),
            total_ops: 0,
            total_bytes: 0,
        }
    }

    /// Records one completion of `bytes` bytes at simulated time `at`.
    pub fn record(&mut self, at: Time, bytes: u64) {
        let idx = (at.as_ps() / self.window.as_ps()) as usize;
        if idx >= self.ops.len() {
            self.ops.resize(idx + 1, 0);
            self.bytes.resize(idx + 1, 0);
        }
        self.ops[idx] += 1;
        self.bytes[idx] += bytes;
        self.total_ops += 1;
        self.total_bytes += bytes;
    }

    /// The window size.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Number of windows touched so far (index of the last + 1).
    pub fn windows(&self) -> usize {
        self.ops.len()
    }

    /// Completions in window `i` (0 beyond the recorded span).
    pub fn ops_in(&self, i: usize) -> u64 {
        self.ops.get(i).copied().unwrap_or(0)
    }

    /// Bytes completed in window `i` (0 beyond the recorded span).
    pub fn bytes_in(&self, i: usize) -> u64 {
        self.bytes.get(i).copied().unwrap_or(0)
    }

    /// Total completions recorded.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Peak completions in any single window.
    pub fn peak_ops(&self) -> u64 {
        self.ops.iter().copied().max().unwrap_or(0)
    }

    /// Mean completions per window over the touched span. Zero if empty.
    pub fn mean_ops_per_window(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.total_ops as f64 / self.ops.len() as f64
    }

    /// Adds another accumulator's windows into this one.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ.
    pub fn merge(&mut self, other: &Throughput) {
        assert_eq!(
            self.window, other.window,
            "cannot merge throughput accumulators with different windows"
        );
        if other.ops.len() > self.ops.len() {
            self.ops.resize(other.ops.len(), 0);
            self.bytes.resize(other.bytes.len(), 0);
        }
        for (i, (&o, &b)) in other.ops.iter().zip(&other.bytes).enumerate() {
            self.ops[i] += o;
            self.bytes[i] += b;
        }
        self.total_ops += other.total_ops;
        self.total_bytes += other.total_bytes;
    }
}

/// Windowed availability accumulator for failure-regime runs: per fixed
/// window of simulated time, how many flows completed and how many
/// failed, so a chaos campaign can report goodput-under-failure,
/// degraded spans, and recovery time after an incident.
///
/// Memory is O(simulated span / window) — independent of flow count —
/// and two accumulators with the same window merge by element-wise
/// addition, so per-shard accumulators combine exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Availability {
    window: Duration,
    delivered: Vec<u64>,
    failed: Vec<u64>,
}

impl Availability {
    /// Creates an accumulator with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration) -> Self {
        assert!(window > Duration::ZERO, "window must be positive");
        Availability {
            window,
            delivered: Vec::new(),
            failed: Vec::new(),
        }
    }

    fn slot(&mut self, at: Time) -> usize {
        let idx = (at.as_ps() / self.window.as_ps()) as usize;
        if idx >= self.delivered.len() {
            self.delivered.resize(idx + 1, 0);
            self.failed.resize(idx + 1, 0);
        }
        idx
    }

    /// Records one flow delivered at simulated time `at`.
    pub fn record_delivery(&mut self, at: Time) {
        let i = self.slot(at);
        self.delivered[i] += 1;
    }

    /// Records one flow failed at simulated time `at`.
    pub fn record_failure(&mut self, at: Time) {
        let i = self.slot(at);
        self.failed[i] += 1;
    }

    /// The window size.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Number of windows touched so far (index of the last + 1).
    pub fn windows(&self) -> usize {
        self.delivered.len()
    }

    /// Deliveries in window `i` (0 beyond the recorded span).
    pub fn delivered_in(&self, i: usize) -> u64 {
        self.delivered.get(i).copied().unwrap_or(0)
    }

    /// Failures in window `i` (0 beyond the recorded span).
    pub fn failed_in(&self, i: usize) -> u64 {
        self.failed.get(i).copied().unwrap_or(0)
    }

    /// Windows with at least one failure.
    pub fn degraded_windows(&self) -> usize {
        self.failed.iter().filter(|&&f| f > 0).count()
    }

    /// Fraction of touched windows with no failure. 1.0 if no window
    /// was touched.
    pub fn availability(&self) -> f64 {
        if self.failed.is_empty() {
            return 1.0;
        }
        1.0 - self.degraded_windows() as f64 / self.failed.len() as f64
    }

    /// Time from `incident` until the end of the first window at or
    /// after it that completes at least one flow — the campaign's
    /// recovery-time metric. `None` if nothing delivers after the
    /// incident within the recorded span.
    pub fn recovery_after(&self, incident: Time) -> Option<Duration> {
        let first = (incident.as_ps() / self.window.as_ps()) as usize;
        for (i, &d) in self.delivered.iter().enumerate().skip(first) {
            if d > 0 {
                let end = Time::ZERO + self.window * (i as u64 + 1);
                return Some(end.saturating_since(incident));
            }
        }
        None
    }

    /// Adds another accumulator's windows into this one.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ.
    pub fn merge(&mut self, other: &Availability) {
        assert_eq!(
            self.window, other.window,
            "cannot merge availability accumulators with different windows"
        );
        if other.delivered.len() > self.delivered.len() {
            self.delivered.resize(other.delivered.len(), 0);
            self.failed.resize(other.failed.len(), 0);
        }
        for (i, (&d, &f)) in other.delivered.iter().zip(&other.failed).enumerate() {
            self.delivered[i] += d;
            self.failed[i] += f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Summary::new();
        for x in 1..=100 {
            s.record(x as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(1.0), 1.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn percentile_after_more_records_resorts() {
        let mut s = Summary::new();
        s.record(10.0);
        assert_eq!(s.median(), 10.0);
        s.record(1.0);
        s.record(2.0);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn record_duration_in_ns() {
        let mut s = Summary::new();
        s.record_duration(Duration::from_ns(300));
        assert_eq!(s.mean(), 300.0);
    }

    #[test]
    fn log_histogram_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(50.0), 31);
        assert_eq!(h.percentile(100.0), 63);
    }

    #[test]
    fn log_histogram_bucket_roundtrip() {
        // Every bucket boundary maps into its own bucket, and the
        // inclusive bounds tile the u64 range without gaps or overlap.
        for i in 1..LOG_BUCKETS {
            let low = LogHistogram::bucket_low(i);
            let high = LogHistogram::bucket_high(i);
            assert_eq!(LogHistogram::bucket_index(low), i, "low of bucket {i}");
            assert_eq!(LogHistogram::bucket_index(high), i, "high of bucket {i}");
            assert_eq!(
                LogHistogram::bucket_high(i - 1).wrapping_add(1),
                low,
                "gap before bucket {i}"
            );
        }
        assert_eq!(LogHistogram::bucket_high(LOG_BUCKETS - 1), u64::MAX);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), LOG_BUCKETS - 1);
    }

    #[test]
    fn log_histogram_error_is_bounded() {
        let mut h = LogHistogram::new();
        let mut exact = Summary::new();
        let mut v = 1u64;
        for i in 0..10_000u64 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(i) % 1_000_000_007;
            h.record(v);
            exact.record(v as f64);
        }
        for p in [50.0, 90.0, 99.0, 99.9, 99.99] {
            let approx = h.percentile(p) as f64;
            let truth = exact.percentile(p);
            assert!(approx >= truth, "p{p}: {approx} < exact {truth}");
            assert!(
                approx <= truth * (1.0 + LogHistogram::MAX_RELATIVE_ERROR),
                "p{p}: {approx} exceeds error bound over exact {truth}"
            );
        }
    }

    #[test]
    fn log_histogram_merge_matches_combined() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3u64, 77, 1024, 90_000, 12, 500_000] {
            all.record(v);
            if v % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        for p in [10.0, 50.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn throughput_windows_and_merge() {
        let w = Duration::from_ns(100);
        let mut t = Throughput::new(w);
        t.record(Time::from_ns(10), 64);
        t.record(Time::from_ns(99), 64);
        t.record(Time::from_ns(100), 128);
        t.record(Time::from_ns(350), 64);
        assert_eq!(t.windows(), 4);
        assert_eq!(t.ops_in(0), 2);
        assert_eq!(t.ops_in(1), 1);
        assert_eq!(t.ops_in(2), 0);
        assert_eq!(t.bytes_in(1), 128);
        assert_eq!(t.peak_ops(), 2);
        assert_eq!(t.total_ops(), 4);
        assert_eq!(t.total_bytes(), 320);
        assert_eq!(t.mean_ops_per_window(), 1.0);

        let mut other = Throughput::new(w);
        other.record(Time::from_ns(120), 32);
        other.record(Time::from_ns(600), 32);
        t.merge(&other);
        assert_eq!(t.windows(), 7);
        assert_eq!(t.ops_in(1), 2);
        assert_eq!(t.bytes_in(1), 160);
        assert_eq!(t.total_ops(), 6);
    }

    #[test]
    fn availability_windows_degradation_and_recovery() {
        let w = Duration::from_us(10);
        let mut a = Availability::new(w);
        // Healthy start, a blackout with failures, then recovery.
        a.record_delivery(Time::from_us(5));
        a.record_delivery(Time::from_us(12));
        a.record_failure(Time::from_us(25));
        a.record_failure(Time::from_us(33));
        a.record_delivery(Time::from_us(47));
        assert_eq!(a.windows(), 5);
        assert_eq!(a.delivered_in(0), 1);
        assert_eq!(a.failed_in(2), 1);
        assert_eq!(a.degraded_windows(), 2);
        assert_eq!(a.availability(), 0.6);
        // Incident at 20µs: windows [20,30) and [30,40) deliver nothing;
        // the first delivering window is [40,50), which ends at 50µs.
        assert_eq!(
            a.recovery_after(Time::from_us(20)),
            Some(Duration::from_us(30))
        );
        assert_eq!(a.recovery_after(Time::from_us(60)), None);

        let mut b = Availability::new(w);
        b.record_failure(Time::from_us(71));
        a.merge(&b);
        assert_eq!(a.windows(), 8);
        assert_eq!(a.failed_in(7), 1);
        assert_eq!(a.degraded_windows(), 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10.0, 5); // [0,50) + overflow
        for x in [0.0, 9.99, 10.0, 49.9, 50.0, 1000.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.total(), 7);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[1].0, 10.0);
    }
}
