//! Statistics collection for experiment harnesses.

use crate::time::Duration;

/// A sample-collecting summary: mean, variance, min/max, and exact
/// percentiles (samples are retained; experiments here collect at most a few
/// million samples, well within memory).
///
/// ```
/// use edm_sim::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.percentile(50.0), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Records a duration, in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_ns_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean. Zero if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population variance. Zero if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample. Zero if empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_if_empty(self.samples.is_empty())
    }

    /// Maximum sample. Zero if empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`. Zero if empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample recorded"));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)]
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }
}

// Small private helper so `min()` returns 0.0 when empty without branching
// twice; keeps the public surface clean.
trait PipeIfEmpty {
    fn pipe_if_empty(self, empty: bool) -> f64;
}
impl PipeIfEmpty for f64 {
    fn pipe_if_empty(self, empty: bool) -> f64 {
        if empty {
            0.0
        } else {
            self
        }
    }
}

/// A fixed-width histogram over `[0, width * buckets)` with an overflow
/// bucket, for latency distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `buckets == 0`.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < 0.0 {
            self.overflow += 1;
            return;
        }
        let idx = (x / self.width) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Observations outside the bucketed range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterator over `(bucket_lower_bound, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * self.width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Summary::new();
        for x in 1..=100 {
            s.record(x as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(1.0), 1.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn percentile_after_more_records_resorts() {
        let mut s = Summary::new();
        s.record(10.0);
        assert_eq!(s.median(), 10.0);
        s.record(1.0);
        s.record(2.0);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn record_duration_in_ns() {
        let mut s = Summary::new();
        s.record_duration(Duration::from_ns(300));
        assert_eq!(s.mean(), 300.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10.0, 5); // [0,50) + overflow
        for x in [0.0, 9.99, 10.0, 49.9, 50.0, 1000.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.total(), 7);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[1].0, 10.0);
    }
}
