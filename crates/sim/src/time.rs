//! Simulated time, durations, and bandwidth arithmetic.
//!
//! All quantities are integer picoseconds so that every constant from the
//! paper is representable exactly: the 2.56 ns PHY block clock is 2 560 ps,
//! the 1/3 ns ASIC scheduler clock is approximated as 333 ps (and its exact
//! rational form is available through [`Duration::from_ps`] call sites that
//! track cycle counts instead of durations).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant in simulated time, in picoseconds since start.
///
/// `Time` is an absolute point; [`Duration`] is a span. The two interact the
/// way `std::time::Instant`/`Duration` do:
///
/// ```
/// use edm_sim::{Time, Duration};
/// let t = Time::from_ns(100) + Duration::from_ns(20);
/// assert_eq!(t, Time::from_ns(120));
/// assert_eq!(t - Time::from_ns(100), Duration::from_ns(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The zero instant (simulation start).
    pub const ZERO: Time = Time(0);
    /// The maximum representable instant; useful as an "infinity" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Raw picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds since simulation start (exact fraction discarded).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Nanoseconds as a float, for reporting.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: Duration) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The maximum representable span; useful as an "infinity" sentinel.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000_000)
    }

    /// Creates a duration from a floating-point nanosecond count, rounding
    /// to the nearest picosecond.
    ///
    /// Useful for paper constants quoted as e.g. `7.68 ns`.
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns >= 0.0, "duration must be non-negative, got {ns}");
        Duration((ns * 1_000.0).round() as u64)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Nanoseconds as a float, for reporting.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Microseconds as a float, for reporting.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// `self / other` as a float ratio (e.g. normalized latency).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: Duration) -> f64 {
        assert!(other.0 != 0, "cannot take ratio against zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for u64 {
    type Output = Duration;
    fn mul(self, rhs: Duration) -> Duration {
        Duration(self * rhs.0)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Rem for Duration {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us_f64())
        } else {
            write!(f, "{:.3} ns", self.as_ns_f64())
        }
    }
}

/// A link bandwidth, stored as bits per second.
///
/// Transmission delays are computed with exact integer arithmetic
/// (rounded up to the next picosecond) so that the DES stays deterministic
/// across platforms:
///
/// ```
/// use edm_sim::{Bandwidth, Duration};
/// let gbe100 = Bandwidth::from_gbps(100);
/// // 64 B at 100 Gb/s = 5.12 ns.
/// assert_eq!(gbe100.tx_time_bytes(64), Duration::from_ps(5_120));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    bits_per_sec: u64,
}

impl Bandwidth {
    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub const fn from_bps(bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "bandwidth must be positive");
        Bandwidth { bits_per_sec }
    }

    /// Creates a bandwidth from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth::from_bps(gbps * 1_000_000_000)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.bits_per_sec
    }

    /// Gigabits per second, as a float.
    pub fn as_gbps_f64(self) -> f64 {
        self.bits_per_sec as f64 / 1e9
    }

    /// Time to serialize `bits` onto the link, rounded up to a picosecond.
    pub fn tx_time_bits(self, bits: u64) -> Duration {
        // ps = bits * 1e12 / bps, computed in u128 to avoid overflow.
        let ps = (bits as u128 * 1_000_000_000_000u128).div_ceil(self.bits_per_sec as u128);
        Duration::from_ps(ps as u64)
    }

    /// Time to serialize `bytes` onto the link.
    pub fn tx_time_bytes(self, bytes: u64) -> Duration {
        self.tx_time_bits(bytes * 8)
    }

    /// Number of whole bytes the link can carry in `d`.
    pub fn bytes_in(self, d: Duration) -> u64 {
        ((d.as_ps() as u128 * self.bits_per_sec as u128) / 8 / 1_000_000_000_000u128) as u64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Gb/s", self.as_gbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_ns(5);
        assert_eq!(t.as_ps(), 5_000);
        assert_eq!((t + Duration::from_ns(3)) - t, Duration::from_ns(3));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
    }

    #[test]
    fn duration_from_float_ns_is_exact_for_paper_constants() {
        assert_eq!(Duration::from_ns_f64(2.56).as_ps(), 2_560);
        assert_eq!(Duration::from_ns_f64(5.12).as_ps(), 5_120);
        assert_eq!(Duration::from_ns_f64(7.68).as_ps(), 7_680);
        assert_eq!(Duration::from_ns_f64(12.8).as_ps(), 12_800);
        assert_eq!(Duration::from_ns_f64(28.16).as_ps(), 28_160);
    }

    #[test]
    fn saturating_ops() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(20);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_ns(10));
        assert_eq!(
            Duration::from_ns(1).saturating_sub(Duration::from_ns(2)),
            Duration::ZERO
        );
    }

    #[test]
    fn tx_time_100g() {
        let bw = Bandwidth::from_gbps(100);
        assert_eq!(bw.tx_time_bytes(64), Duration::from_ps(5_120));
        assert_eq!(bw.tx_time_bytes(1500), Duration::from_ns(120));
        // 9 KB jumbo frame = 720 ns (paper §2.4 limitation 3).
        assert_eq!(bw.tx_time_bytes(9000), Duration::from_ns(720));
    }

    #[test]
    fn tx_time_25g() {
        let bw = Bandwidth::from_gbps(25);
        // One 64-bit block payload at 25 Gb/s = 2.56 ns: the PHY clock.
        assert_eq!(bw.tx_time_bits(64), Duration::from_ps(2_560));
    }

    #[test]
    fn tx_time_rounds_up() {
        // At 3 bits per second, 1 bit takes ceil(1e12/3) ps.
        let bw = Bandwidth::from_bps(3);
        assert_eq!(bw.tx_time_bits(1).as_ps(), 333_333_333_334);
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let bw = Bandwidth::from_gbps(100);
        for n in [1u64, 64, 256, 1500, 9000, 123_456] {
            let d = bw.tx_time_bytes(n);
            assert_eq!(bw.bytes_in(d), n);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_ns(500)), "500.000 ns");
        assert_eq!(format!("{}", Duration::from_us(2)), "2.000 us");
        assert_eq!(format!("{}", Bandwidth::from_gbps(25)), "25 Gb/s");
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [1u64, 2, 3].iter().map(|&n| Duration::from_ns(n)).sum();
        assert_eq!(total, Duration::from_ns(6));
    }
}
