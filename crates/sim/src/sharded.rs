//! Conservative parallel execution of one simulation across shards.
//!
//! This is the engine half of the parallel DES design (the world half
//! lives in `edm-topo`): a single logical simulation is partitioned into
//! *logical processes* (shards), each owning a disjoint slice of the
//! mutable world state and its own calendar [`EventQueue`]. Shards run
//! in lockstep over *conservative windows* in the Chandy–Misra–Bryant
//! style:
//!
//! 1. Every shard processes its local events with `time < window_end`,
//!    appending any cross-shard [`Envelope`]s to an outbox instead of
//!    scheduling them directly.
//! 2. At the window barrier, envelopes are routed to their recipients'
//!    mailboxes and each shard merges its inbox **deterministically** by
//!    `(time, ord, source shard, source index)` — the same `(time, ord)`
//!    key the sequential queue sorts by, so a merged event lands in
//!    exactly the tie position it would occupy in a single-queue run.
//! 3. The next window start is the global minimum pending-event time;
//!    the window end is bounded by the *lookahead* (the minimum latency
//!    of any cross-shard edge) and never crosses a *cut* (a time at
//!    which replicated global state changes, e.g. a fault).
//!
//! Correctness rests on one invariant the caller must guarantee: **every
//! cross-shard envelope is timestamped at least `lookahead` after the
//! event that emitted it.** A window never extends more than `lookahead`
//! past its start, so an envelope sent during window *k* is always
//! delivered at barrier *k+1* before its receiver can reach its
//! timestamp — no shard ever receives an event in its past.
//!
//! Envelopes timestamped *before* the barrier are state-sync records
//! (e.g. delivery credits replicated to every shard): [`ShardWorld::receive`]
//! applies them immediately, in the same deterministic order.
//!
//! With one shard the driver degenerates to the plain sequential loop —
//! no threads, no barriers, no mailboxes.
//!
//! Events at [`Time::MAX`] are treated as "never" and are not
//! dispatched (the workspace-wide infinity-sentinel convention).

use crate::engine::EventQueue;
use crate::time::{Duration, Time};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Where an [`Envelope`] is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recipient {
    /// One specific shard (never the sender itself — intra-shard events
    /// are scheduled locally, not mailed).
    Shard(u32),
    /// Every shard except the sender (state-sync records).
    Broadcast,
}

/// A cross-shard message with its deterministic delivery key.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Recipient shard(s).
    pub to: Recipient,
    /// Delivery timestamp. Event envelopes must be at least the
    /// lookahead after the emitting event; state-sync envelopes may be
    /// timestamped in the (window-local) past and are applied at the
    /// barrier.
    pub at: Time,
    /// Content-derived order key — must match the key the event would
    /// carry in a sequential run ([`EventQueue::schedule_ordered`]).
    pub ord: u64,
    /// Payload.
    pub msg: M,
}

/// One logical process of a sharded simulation.
pub trait ShardWorld: Send {
    /// Local event type.
    type Event: Send;
    /// Cross-shard message type. `Clone` because broadcasts fan out.
    type Msg: Send + Clone;

    /// Handles one local event; follow-ups are scheduled through `q`
    /// (with content-derived order keys) and cross-shard effects are
    /// appended to the world's outbox.
    fn handle(&mut self, now: Time, ev: Self::Event, q: &mut EventQueue<Self::Event>);

    /// Moves every envelope emitted since the last drain into `sink`.
    fn drain_outbox(&mut self, sink: &mut Vec<Envelope<Self::Msg>>);

    /// Delivers one inbound envelope: schedule it as a local event
    /// (`q.schedule_ordered(at, ord, ..)`) or apply it as state sync.
    /// Called only at window barriers, in `(at, ord, src, idx)` order.
    fn receive(&mut self, at: Time, ord: u64, msg: Self::Msg, q: &mut EventQueue<Self::Event>);
}

/// Static parameters of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Conservative window bound: the minimum timestamp distance of any
    /// cross-shard envelope from its emitting event. Must be positive;
    /// use [`Duration::MAX`] when shards cannot exchange events at all.
    pub lookahead: Duration,
    /// Sorted times that windows must not cross: instants at which every
    /// shard mutates replicated global state (fault injection). A cut at
    /// `t` forces a barrier at `t`, so state-sync envelopes from before
    /// `t` are applied everywhere before any shard processes `t`.
    pub cuts: Vec<Time>,
}

/// A routed envelope waiting in a mailbox.
struct Routed<M> {
    at: Time,
    ord: u64,
    src: u32,
    idx: u64,
    msg: M,
}

/// `u64` encoding of "no pending events".
const NONE_PS: u64 = u64::MAX;

fn peek_ps<E>(q: &EventQueue<E>) -> u64 {
    q.peek_time().map_or(NONE_PS, |t| t.as_ps())
}

/// End of the window starting at `w`: at most `lookahead` long, never
/// crossing a cut.
fn window_end(w: Time, config: &ShardedConfig) -> Time {
    let cap = w.checked_add(config.lookahead).unwrap_or(Time::MAX);
    match config.cuts.iter().find(|&&c| c > w) {
        Some(&c) => cap.min(c),
        None => cap,
    }
}

/// Runs a sharded simulation to completion and returns the worlds.
///
/// `shards[i]` is logical process `i` with its pre-seeded event queue.
/// With a single shard this is a plain sequential event loop; otherwise
/// one OS thread per shard runs the conservative window protocol.
///
/// # Panics
///
/// Panics if `shards` is empty, `lookahead` is zero, `cuts` is not
/// sorted, or a shard mails an envelope to itself. A lookahead
/// violation (an event envelope timestamped in its receiver's past — a
/// bug in the caller's partitioning) surfaces as the causality panic
/// when the mis-scheduled event is popped.
pub fn run_sharded<W: ShardWorld>(
    shards: Vec<(W, EventQueue<W::Event>)>,
    config: &ShardedConfig,
) -> Vec<W> {
    assert!(!shards.is_empty(), "need at least one shard");
    assert!(
        config.lookahead > Duration::ZERO,
        "conservative windows need positive lookahead"
    );
    assert!(
        config.cuts.windows(2).all(|w| w[0] <= w[1]),
        "cuts must be sorted"
    );
    let n = shards.len();
    if n == 1 {
        return vec![run_single(shards.into_iter().next().expect("one shard"))];
    }

    let barrier = SpinBarrier::new(n);
    let mailboxes: Vec<Mutex<Vec<Routed<W::Msg>>>> =
        (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NONE_PS)).collect();

    let mut worlds: Vec<Option<W>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(me, (world, queue))| {
                let barrier = &barrier;
                let mailboxes = &mailboxes;
                let next_times = &next_times;
                scope.spawn(move || {
                    run_shard_thread(
                        me as u32, world, queue, config, barrier, mailboxes, next_times,
                    )
                })
            })
            .collect();
        for h in handles {
            worlds.push(Some(h.join().expect("shard thread panicked")));
        }
    });
    worlds.into_iter().map(|w| w.expect("joined")).collect()
}

/// The degenerate one-shard run: a plain sequential loop. Outbox
/// envelopes must all be broadcasts (state sync with no other recipient)
/// and are dropped.
fn run_single<W: ShardWorld>((mut world, mut queue): (W, EventQueue<W::Event>)) -> W {
    let mut scratch = Vec::new();
    while let Some(t) = queue.peek_time() {
        if t == Time::MAX {
            break;
        }
        let (at, ev) = queue.pop().expect("peeked");
        world.handle(at, ev, &mut queue);
        world.drain_outbox(&mut scratch);
        for env in scratch.drain(..) {
            assert!(
                matches!(env.to, Recipient::Broadcast),
                "single-shard run mailed an envelope to {:?}",
                env.to
            );
        }
    }
    world
}

/// The per-thread window protocol (see the module docs).
#[allow(clippy::too_many_arguments)]
fn run_shard_thread<W: ShardWorld>(
    me: u32,
    mut world: W,
    mut queue: EventQueue<W::Event>,
    config: &ShardedConfig,
    barrier: &SpinBarrier,
    mailboxes: &[Mutex<Vec<Routed<W::Msg>>>],
    next_times: &[AtomicU64],
) -> W {
    let mut outbox: Vec<Envelope<W::Msg>> = Vec::new();
    let mut sent: u64 = 0; // per-shard envelope index (FIFO tie-break)
    let mut now = Time::ZERO; // monotonicity check only

    // Establish the first window start from the global minimum seed time.
    next_times[me as usize].store(peek_ps(&queue), Ordering::Release);
    barrier.wait();
    let global_min = |times: &[AtomicU64]| {
        times
            .iter()
            .map(|t| t.load(Ordering::Acquire))
            .min()
            .expect("at least one shard")
    };
    let mut w_start_ps = global_min(next_times);

    while w_start_ps != NONE_PS {
        let w_start = Time::from_ps(w_start_ps);
        let w_end = window_end(w_start, config);

        // 1. Process this shard's slice of the window.
        while let Some(t) = queue.peek_time() {
            if t >= w_end || t == Time::MAX {
                break;
            }
            let (at, ev) = queue.pop().expect("peeked");
            assert!(at >= now, "causality violation: {at} after {now}");
            now = at;
            world.handle(at, ev, &mut queue);
        }

        // 2. Route outbound envelopes into recipient mailboxes.
        world.drain_outbox(&mut outbox);
        for env in outbox.drain(..) {
            let idx = sent;
            sent += 1;
            match env.to {
                Recipient::Shard(to) => {
                    assert_ne!(to, me, "shard {me} mailed an envelope to itself");
                    mailboxes[to as usize]
                        .lock()
                        .expect("mailbox")
                        .push(Routed {
                            at: env.at,
                            ord: env.ord,
                            src: me,
                            idx,
                            msg: env.msg,
                        });
                }
                Recipient::Broadcast => {
                    for (to, mbox) in mailboxes.iter().enumerate() {
                        if to == me as usize {
                            continue;
                        }
                        mbox.lock().expect("mailbox").push(Routed {
                            at: env.at,
                            ord: env.ord,
                            src: me,
                            idx,
                            msg: env.msg.clone(),
                        });
                    }
                }
            }
        }
        barrier.wait(); // every mailbox now holds this window's full traffic

        // 3. Merge the inbox deterministically and publish the next
        //    pending-event time.
        let mut inbox = std::mem::take(&mut *mailboxes[me as usize].lock().expect("mailbox"));
        inbox.sort_unstable_by_key(|r| (r.at, r.ord, r.src, r.idx));
        for r in inbox {
            // Envelopes timestamped before `now` are either state-sync
            // records (fine) or lookahead violations; the generic engine
            // cannot tell them apart here, but a violation that schedules
            // an event in the receiver's past trips the causality panic
            // at pop time below.
            world.receive(r.at, r.ord, r.msg, &mut queue);
        }
        next_times[me as usize].store(peek_ps(&queue), Ordering::Release);
        barrier.wait();

        // 4. All shards see the same published times, so they compute
        //    the same next window (or all stop together).
        w_start_ps = global_min(next_times);
    }
    world
}

/// A sense-reversing barrier that spins briefly, then yields.
///
/// Window barriers fire at simulation-window frequency (often well under
/// a microsecond of work per shard per window), so parking-lot style OS
/// blocking would dominate; pure spinning, on the other hand, melts down
/// when shards outnumber cores. A short spin followed by
/// `thread::yield_now` handles both regimes — and when the thread count
/// already exceeds the machine's parallelism the spin phase is skipped
/// entirely (a waiting spinner can only burn the timeslice the arriving
/// thread needs).
struct SpinBarrier {
    n: usize,
    spin: u32,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        SpinBarrier {
            n,
            spin: if n <= cores { 128 } else { 0 },
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < self.spin {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring world: shard `i` owns counter `i`; a `Tick(k)` event adds
    /// `k` to the counter and forwards `Tick(k-1)` to the next shard
    /// `delay` later. `Sync` broadcasts replicate a tally to every shard
    /// at the emitting timestamp.
    struct Ring {
        me: u32,
        n: u32,
        delay: Duration,
        counter: u64,
        tally: u64,
        log: Vec<(Time, u64)>,
        outbox: Vec<Envelope<RingMsg>>,
    }

    #[derive(Debug, Clone, Copy)]
    enum RingMsg {
        Tick(u64),
        Sync(u64),
    }

    impl ShardWorld for Ring {
        type Event = u64; // k
        type Msg = RingMsg;

        fn handle(&mut self, now: Time, k: u64, q: &mut EventQueue<u64>) {
            self.counter += k;
            self.log.push((now, k));
            self.outbox.push(Envelope {
                to: Recipient::Broadcast,
                at: now,
                ord: 1 << 32 | k,
                msg: RingMsg::Sync(k),
            });
            self.tally += k;
            if k > 0 {
                let to = (self.me + 1) % self.n;
                if to == self.me {
                    // Own-shard hop: schedule locally, exactly as a real
                    // world does for intra-shard traffic.
                    q.schedule_ordered(now + self.delay, k - 1, k - 1);
                } else {
                    self.outbox.push(Envelope {
                        to: Recipient::Shard(to),
                        at: now + self.delay,
                        ord: k - 1,
                        msg: RingMsg::Tick(k - 1),
                    });
                }
            }
        }

        fn drain_outbox(&mut self, sink: &mut Vec<Envelope<RingMsg>>) {
            sink.append(&mut self.outbox);
        }

        fn receive(&mut self, at: Time, ord: u64, msg: RingMsg, q: &mut EventQueue<u64>) {
            match msg {
                RingMsg::Tick(k) => q.schedule_ordered(at, ord, k),
                RingMsg::Sync(k) => self.tally += k,
            }
        }
    }

    fn ring(n: u32, delay: Duration) -> Vec<(Ring, EventQueue<u64>)> {
        (0..n)
            .map(|me| {
                let mut q = EventQueue::new();
                if me == 0 {
                    q.schedule_ordered(Time::from_ns(5), 40, 40u64);
                }
                (
                    Ring {
                        me,
                        n,
                        delay,
                        counter: 0,
                        tally: 0,
                        log: Vec::new(),
                        outbox: Vec::new(),
                    },
                    q,
                )
            })
            .collect()
    }

    #[test]
    fn ring_token_passes_across_shards() {
        // 40 + 39 + ... + 0 distributed round-robin over 4 shards; the
        // lookahead equals the forwarding delay, so every window carries
        // exactly one hop.
        let delay = Duration::from_ns(7);
        let cfg = ShardedConfig {
            lookahead: delay,
            cuts: vec![],
        };
        let worlds = run_sharded(ring(4, delay), &cfg);
        let grand: u64 = worlds.iter().map(|w| w.counter).sum();
        assert_eq!(grand, (0..=40).sum::<u64>());
        // Shard 0 got k = 40, 36, 32, ...
        assert_eq!(worlds[0].counter, (0..=40).filter(|k| k % 4 == 0).sum());
        // Broadcast syncs replicated the full tally everywhere.
        for w in &worlds {
            assert_eq!(w.tally, grand, "shard {} tally", w.me);
        }
        // Timestamps advance one delay per hop.
        assert_eq!(worlds[1].log[0].0, Time::from_ns(5) + delay);
    }

    #[test]
    fn cuts_only_add_barriers() {
        let delay = Duration::from_ns(7);
        let no_cuts = ShardedConfig {
            lookahead: delay,
            cuts: vec![],
        };
        let cuts = ShardedConfig {
            lookahead: delay,
            cuts: (1..100).map(|i| Time::from_ns(3 * i)).collect(),
        };
        let a = run_sharded(ring(3, delay), &no_cuts);
        let b = run_sharded(ring(3, delay), &cuts);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.counter, y.counter);
            assert_eq!(x.log, y.log);
            assert_eq!(x.tally, y.tally);
        }
    }

    #[test]
    fn single_shard_is_sequential() {
        let delay = Duration::from_ns(7);
        let cfg = ShardedConfig {
            lookahead: delay,
            cuts: vec![],
        };
        let worlds = run_sharded(ring(1, delay), &cfg);
        assert_eq!(worlds[0].counter, (0..=40).sum::<u64>());
        assert_eq!(worlds[0].log.len(), 41);
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let delay = Duration::from_ns(4);
        let cfg = ShardedConfig {
            lookahead: delay,
            cuts: vec![Time::from_ns(20), Time::from_ns(90)],
        };
        let merged_log = |n: u32| {
            let mut log: Vec<(Time, u64)> = run_sharded(ring(n, delay), &cfg)
                .into_iter()
                .flat_map(|w| w.log)
                .collect();
            log.sort_unstable();
            log
        };
        let reference = merged_log(1);
        for n in 2..=4 {
            assert_eq!(merged_log(n), reference, "{n} shards diverged");
        }
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_rejected() {
        let cfg = ShardedConfig {
            lookahead: Duration::ZERO,
            cuts: vec![],
        };
        let _ = run_sharded(ring(2, Duration::from_ns(1)), &cfg);
    }
}
