//! `edm-sim` — deterministic discrete-event simulation engine.
//!
//! This crate is the substrate underneath every simulation in the EDM
//! reproduction. It provides:
//!
//! * [`Time`] / [`Duration`] — integer-picosecond simulated time, exact for
//!   every constant in the paper (a 2.56 ns PHY clock cycle is 2 560 ps).
//! * [`Bandwidth`] — link speeds with exact transmission-delay arithmetic.
//! * [`EventQueue`] and [`Engine`] — a classic calendar-queue DES driver
//!   (O(1) expected schedule/pop, self-resizing day buckets plus a
//!   far-future overflow heap) with deterministic keyed tie-breaking
//!   (`(time, ord, seq)`), pinned bit-identical to the dense
//!   [`BinaryHeapEventQueue`] reference by property tests.
//! * [`sharded`] — a conservative (Chandy–Misra–Bryant-style) parallel
//!   driver that runs one simulation as several logical processes with
//!   lookahead-bounded windows and deterministic cross-shard merges
//!   ([`run_sharded`]); worlds built on content-derived order keys are
//!   bit-identical to their sequential runs at any shard count.
//! * [`rng`] — a self-contained, seedable xoshiro256++ generator plus the
//!   distributions the workloads need (uniform, exponential, empirical CDF).
//! * [`stats`] — streaming summaries (mean/percentiles/histograms) used by
//!   every experiment harness.
//!
//! # Example
//!
//! ```
//! use edm_sim::{Engine, Time, Duration};
//!
//! // A world that counts ticks and reschedules itself three times.
//! struct Ticker { ticks: u32 }
//! impl edm_sim::World for Ticker {
//!     type Event = ();
//!     fn handle(&mut self, now: Time, _ev: (), q: &mut edm_sim::EventQueue<()>) {
//!         self.ticks += 1;
//!         if self.ticks < 3 {
//!             q.schedule(now + Duration::from_ns(10), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Ticker { ticks: 0 });
//! engine.queue_mut().schedule(Time::ZERO, ());
//! engine.run();
//! assert_eq!(engine.world().ticks, 3);
//! assert_eq!(engine.now(), Time::from_ns(20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod rng;
pub mod sharded;
pub mod stats;
pub mod time;

pub use engine::{BinaryHeapEventQueue, Engine, EventQueue, World};
pub use rng::Rng;
pub use sharded::{run_sharded, Envelope, Recipient, ShardWorld, ShardedConfig};
pub use stats::{Availability, Histogram, LogHistogram, Summary, Throughput};
pub use time::{Bandwidth, Duration, Time};
