//! The discrete-event simulation driver.
//!
//! The engine is split into two pieces so that event handlers can schedule
//! follow-up events while mutably borrowing the world state:
//!
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking for simultaneous events.
//! * [`World`] — the user's simulation state; its [`World::handle`] method
//!   receives each event together with a mutable reference to the queue.
//! * [`Engine`] — owns both and drives the main loop.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO), which keeps simulations deterministic.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Simulation state that reacts to events.
pub trait World {
    /// The event type this world processes.
    type Event;

    /// Handles one event at simulated time `now`.
    ///
    /// Follow-up events are scheduled through `queue`; scheduling in the
    /// past is permitted by the queue but will be caught by the engine's
    /// monotonicity check when the event is popped.
    fn handle(&mut self, now: Time, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Drives a [`World`] until the event queue drains (or a step budget or
/// time horizon is reached).
#[derive(Debug)]
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: Time,
    steps: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine around `world` with an empty event queue.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: Time::ZERO,
            steps: 0,
        }
    }

    /// The current simulated time (time of the last dispatched event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Mutable access to the event queue (e.g. to seed initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Dispatches a single event. Returns `false` if the queue was empty.
    ///
    /// # Panics
    ///
    /// Panics if an event was scheduled before the current simulated time
    /// (causality violation).
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, ev)) => {
                assert!(
                    at >= self.now,
                    "causality violation: event at {at} popped at {now}",
                    now = self.now
                );
                self.now = at;
                self.steps += 1;
                self.world.handle(at, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are processed.
    pub fn run_until(&mut self, horizon: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
    }

    /// Runs at most `max_steps` more events (or until the queue drains).
    /// Returns the number of events actually dispatched.
    pub fn run_steps(&mut self, max_steps: u64) -> u64 {
        let mut done = 0;
        while done < max_steps && self.step() {
            done += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[derive(Default)]
    struct Recorder {
        log: Vec<(Time, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: Time, ev: u32, q: &mut EventQueue<u32>) {
            self.log.push((now, ev));
            if ev == 1 {
                // Chain two follow-ups at the same future instant: FIFO order
                // must be preserved.
                q.schedule(now + Duration::from_ns(5), 10);
                q.schedule(now + Duration::from_ns(5), 11);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = Engine::new(Recorder::default());
        eng.queue_mut().schedule(Time::from_ns(30), 3);
        eng.queue_mut().schedule(Time::from_ns(10), 1);
        eng.queue_mut().schedule(Time::from_ns(20), 2);
        eng.run();
        let evs: Vec<u32> = eng.world().log.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![1, 10, 11, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut eng = Engine::new(Recorder::default());
        for i in 0..100 {
            eng.queue_mut().schedule(Time::from_ns(7), i + 100);
        }
        eng.run();
        let evs: Vec<u32> = eng.world().log.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, (100..200).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_horizon_is_inclusive() {
        let mut eng = Engine::new(Recorder::default());
        eng.queue_mut().schedule(Time::from_ns(10), 2);
        eng.queue_mut().schedule(Time::from_ns(20), 3);
        eng.queue_mut().schedule(Time::from_ns(30), 4);
        eng.run_until(Time::from_ns(20));
        assert_eq!(eng.world().log.len(), 2);
        assert_eq!(eng.queue_mut().len(), 1);
    }

    #[test]
    fn run_steps_budget() {
        let mut eng = Engine::new(Recorder::default());
        for i in 0..10 {
            eng.queue_mut().schedule(Time::from_ns(i), i as u32);
        }
        assert_eq!(eng.run_steps(4), 4);
        assert_eq!(eng.world().log.len(), 4);
        // Event `1` spawned two follow-ups, so 8 remain of the original 10.
        assert_eq!(eng.run_steps(100), 8);
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut eng = Engine::new(Recorder::default());
        assert!(!eng.step());
        assert_eq!(eng.now(), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn past_scheduling_panics_on_dispatch() {
        struct Bad;
        impl World for Bad {
            type Event = bool;
            fn handle(&mut self, _now: Time, first: bool, q: &mut EventQueue<bool>) {
                if first {
                    q.schedule(Time::ZERO, false); // in the past
                }
            }
        }
        let mut eng = Engine::new(Bad);
        eng.queue_mut().schedule(Time::from_ns(10), true);
        eng.run();
    }

    #[test]
    fn queue_len_and_peek() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_ns(4), 1);
        q.schedule(Time::from_ns(2), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
    }
}
