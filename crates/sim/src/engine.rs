//! The discrete-event simulation driver.
//!
//! The engine is split into two pieces so that event handlers can schedule
//! follow-up events while mutably borrowing the world state:
//!
//! * [`EventQueue`] — a calendar-queue priority queue with deterministic
//!   FIFO tie-breaking for simultaneous events.
//! * [`World`] — the user's simulation state; its [`World::handle`] method
//!   receives each event together with a mutable reference to the queue.
//! * [`Engine`] — owns both and drives the main loop.
//!
//! # The calendar queue
//!
//! [`EventQueue`] is the classic discrete-event-simulation calendar queue
//! (Brown 1988, the structure NS-style simulators use to reach O(1)
//! enqueue/dequeue): simulated time is cut into power-of-two-wide *days*
//! (buckets); one sweep across the bucket array is a *year*. Events
//! inside the current year hash into their day bucket in O(1); events
//! beyond it wait in an *overflow* binary heap and are poured into
//! buckets when the year advances. `pop` walks forward from the
//! last-popped bucket to the first non-empty one — amortized O(1) when
//! the resize policy keeps occupancy near one event per bucket.
//!
//! Buckets are sorted intrusive singly-linked lists living in one shared
//! node slab (the same zero-sentinel-slab idiom the scheduler and
//! simulator cores use): the bucket array is two flat `u32` vectors
//! (head/tail per bucket) and nodes are recycled through a free list, so
//! steady-state churn allocates nothing and bucket scans stay on dense
//! cache lines. The tail pointer makes the common inserts O(1): a key
//! past the bucket's tail — in particular every same-time burst, whose
//! members carry increasing sequence numbers — appends directly.
//!
//! Three invariants make the structure exactly equivalent to a sorted
//! list over `(time, ord, seq)` (pinned against [`BinaryHeapEventQueue`]
//! by the `prop_sim` property suite), where `ord` is an optional
//! caller-supplied 64-bit order key ([`EventQueue::schedule_ordered`];
//! plain [`EventQueue::schedule`] uses 0, preserving pure FIFO ties):
//!
//! 1. **Window partition** — bucket `i` holds only events with
//!    `(t - year_start) >> width_log2 == i`; everything at or past the
//!    year's end lives in the overflow heap. Hence the first non-empty
//!    bucket contains the global minimum whenever any bucket is occupied.
//! 2. **Scan-prefix emptiness** — buckets before the scan cursor are
//!    empty: `pop` leaves the cursor on the bucket it popped from and
//!    `schedule` rewinds it when inserting earlier into the current year,
//!    so the forward scan never skips an earlier event.
//! 3. **Keyed FIFO tie-break** — every entry carries its order key and a
//!    monotonically increasing sequence number, and all orderings (bucket
//!    lists, overflow heap) compare `(time, ord, seq)`, so simultaneous
//!    events pop by order key, schedule order within a key, no matter
//!    which buckets, resizes, or overflow drains they traveled through.
//!    This is load-bearing twice over: worlds in `edm-core` and
//!    `edm-topo` are only deterministic because ties resolve this way,
//!    and the parallel conservative engine ([`crate::sharded`]) is only
//!    *bit-identical* to the sequential run because the order key is a
//!    pure function of event content — the same key sorts an event into
//!    the same tie position whether it was scheduled locally or merged
//!    in from another shard at a window barrier.
//!
//! Resizing is automatic: the queue starts with **zero buckets** (a
//! plain binary heap — allocation free until first use), engages the
//! calendar once enough events are pending, doubles geometrically under
//! growth, and degrades back to the plain heap when nearly drained. A
//! resize rebuilds the geometry from the live event-time span, so bucket
//! width tracks the average event spacing. Because a population can
//! *compress* without ever changing size (the classic hold pattern:
//! always reschedule the popped minimum, and the span shrinks toward a
//! few gaps while `len` stays constant), staleness is also detected
//! directly: a sorted-insert walk longer than `WALK_LIMIT` re-derives
//! the geometry, rate-limited to once per population turnover so an
//! incompressible population cannot thrash in rebuilds.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
/// Pending-event count at which the calendar engages (below this a plain
/// binary heap is both smaller and faster).
const ENGAGE_LEN: usize = 24;
/// Pending-event count below which an engaged calendar degrades back to
/// the plain heap (hysteresis against `ENGAGE_LEN`).
const DISENGAGE_LEN: usize = 8;
/// Bucket-count bounds while engaged (both powers of two).
const MIN_BUCKETS: usize = 32;
const MAX_BUCKETS: usize = 1 << 20;
/// An insert walk longer than this signals degenerate geometry (bucket
/// width too coarse for the live population) and requests a rebuild.
const WALK_LIMIT: u32 = 16;
/// How many head-end events the rebuild samples to derive the bucket
/// width (Brown's calendar-queue sampling rule).
const HEAD_SAMPLE: usize = 32;
/// Null link / empty-bucket sentinel.
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    ord: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.ord == other.ord && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.ord, self.seq).cmp(&(other.at, other.ord, other.seq))
    }
}

/// A slab node: one pending event threaded into its bucket's sorted list
/// (or onto the free list, with `event` taken out).
#[derive(Debug)]
struct Node<E> {
    at: Time,
    ord: u64,
    seq: u64,
    next: u32,
    event: Option<E>,
}

/// A time-ordered event queue (calendar queue).
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO), which keeps simulations deterministic. The
/// implementation is a self-resizing calendar queue — O(1) expected
/// `schedule`/`pop` regardless of the number of pending events — with
/// pop order bit-identical to the dense [`BinaryHeapEventQueue`]
/// reference (see the [module docs](self) for the invariants).
///
/// ```
/// use edm_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_us(1_000), "far future"); // lands in overflow
/// q.schedule(Time::from_ns(5), "a");
/// q.schedule(Time::from_ns(5), "b"); // same instant: FIFO after "a"
/// assert_eq!(q.peek_time(), Some(Time::from_ns(5)));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "a")));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "b")));
/// assert_eq!(q.pop(), Some((Time::from_us(1_000), "far future")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Head node per bucket (`NIL` = empty). Empty vector = calendar
    /// disengaged (everything lives in `overflow`).
    heads: Vec<u32>,
    /// Tail node per bucket, for O(1) append of past-tail keys.
    tails: Vec<u32>,
    /// Shared node slab; freed nodes are recycled through `free`.
    nodes: Vec<Node<E>>,
    /// Free-list head (`NIL` = slab fully live).
    free: u32,
    /// log2 of the bucket width in picoseconds.
    width_log2: u32,
    /// Start of the current year, in picoseconds (bucket-width aligned).
    year_start: u64,
    /// Forward-scan cursor: buckets before it are empty (invariant 2).
    cur_bucket: usize,
    /// Events currently threaded into buckets.
    in_buckets: usize,
    /// Events at or beyond the current year's end (min-heap).
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Total pending events (`in_buckets + overflow.len()`).
    length: usize,
    /// Schedules remaining before a long insert walk may trigger another
    /// geometry rebuild (one population turnover of cooldown, so a
    /// degenerate-but-unfixable population cannot thrash in rebuilds).
    walk_cooldown: usize,
    /// Next sequence number for FIFO tie-breaking.
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue. Allocates nothing until the first
    /// [`schedule`](Self::schedule).
    pub fn new() -> Self {
        EventQueue {
            heads: Vec::new(),
            tails: Vec::new(),
            nodes: Vec::new(),
            free: NIL,
            width_log2: 0,
            year_start: 0,
            cur_bucket: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            length: 0,
            walk_cooldown: 0,
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at` with order key 0
    /// (pure FIFO among same-time events scheduled this way).
    pub fn schedule(&mut self, at: Time, event: E) {
        self.schedule_ordered(at, 0, event);
    }

    /// Schedules `event` at `at` with an explicit order key: same-time
    /// events pop in ascending `ord`, schedule order within a key.
    ///
    /// Worlds that must stay bit-identical between sequential and
    /// sharded execution derive `ord` purely from event content, so a
    /// cross-shard event merged at a window barrier lands in exactly the
    /// tie position it would have occupied in a single-queue run.
    pub fn schedule_ordered(&mut self, at: Time, ord: u64, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.length += 1;
        if self.heads.is_empty() {
            self.overflow.push(Reverse(Entry {
                at,
                ord,
                seq,
                event,
            }));
        } else {
            if at.as_ps() < self.year_start {
                // Scheduling before the current year: rewind the window so
                // the window-partition invariant keeps holding.
                self.rebase(at);
            }
            let idx = (at.as_ps() - self.year_start) >> self.width_log2;
            if idx < self.heads.len() as u64 {
                let node = self.alloc(at, ord, seq, event);
                let walk = self.insert_bucket(idx as usize, node);
                if (idx as usize) < self.cur_bucket {
                    self.cur_bucket = idx as usize;
                }
                // A long sorted-insert walk means the bucket width has
                // gone stale for the live population (e.g. a compressing
                // hold pattern piling everything into one bucket) even
                // though `length` never crossed a resize threshold.
                // Re-derive the geometry, at most once per population
                // turnover.
                self.walk_cooldown = self.walk_cooldown.saturating_sub(1);
                if walk > WALK_LIMIT && self.walk_cooldown == 0 {
                    self.rebuild();
                    return;
                }
            } else {
                self.overflow.push(Reverse(Entry {
                    at,
                    ord,
                    seq,
                    event,
                }));
            }
        }
        // Grow (or first engage) when occupancy outruns the bucket count.
        // The `< MAX_BUCKETS` guard matters: once the bucket count
        // saturates, this condition would otherwise hold on every
        // schedule and trigger a futile O(n) rebuild per insert.
        if self.length > 2 * self.heads.len().max(ENGAGE_LEN / 2) && self.heads.len() < MAX_BUCKETS
        {
            self.rebuild();
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.length == 0 {
            return None;
        }
        let popped = if self.heads.is_empty() {
            // Disengaged: plain binary-heap behavior.
            let Reverse(e) = self.overflow.pop().expect("length > 0");
            (e.at, e.event)
        } else {
            if self.in_buckets == 0 {
                // Year exhausted: jump straight to the year containing the
                // overflow minimum and pour that year's events in.
                let base = self.overflow.peek().expect("length > 0").0.at;
                self.rebase(base);
            }
            let b = self.first_nonempty().expect("in_buckets > 0");
            self.cur_bucket = b;
            let node = self.pop_bucket(b);
            let (at, _, _, event) = self.release(node);
            (at, event)
        };
        self.length -= 1;
        // Shrink once occupancy is far below the bucket count (hysteresis
        // against the growth threshold), or degrade to the plain heap.
        if !self.heads.is_empty()
            && (self.length < DISENGAGE_LEN || self.length * 8 < self.heads.len())
        {
            self.rebuild();
        }
        Some(popped)
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        if self.length == 0 {
            None
        } else if self.in_buckets == 0 {
            // Either disengaged or the year is exhausted; in both cases the
            // overflow heap holds every pending event.
            self.overflow.peek().map(|r| r.0.at)
        } else {
            // Invariant 1: the first non-empty bucket holds the minimum.
            let b = self.first_nonempty().expect("in_buckets > 0");
            Some(self.nodes[self.heads[b] as usize].at)
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.length
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.length == 0
    }

    /// First non-empty bucket at or after the scan cursor. Invariant 2
    /// guarantees no earlier bucket is occupied; the debug assertion and
    /// full rescan keep the failure mode loud instead of misordered.
    fn first_nonempty(&self) -> Option<usize> {
        let ahead = (self.cur_bucket..self.heads.len()).find(|&i| self.heads[i] != NIL);
        if ahead.is_some() || self.in_buckets == 0 {
            return ahead;
        }
        debug_assert!(false, "occupied bucket behind the scan cursor");
        (0..self.cur_bucket).find(|&i| self.heads[i] != NIL)
    }

    /// Takes a node from the free list (or grows the slab).
    fn alloc(&mut self, at: Time, ord: u64, seq: u64, event: E) -> u32 {
        if self.free != NIL {
            let i = self.free;
            let n = &mut self.nodes[i as usize];
            self.free = n.next;
            n.at = at;
            n.ord = ord;
            n.seq = seq;
            n.next = NIL;
            n.event = Some(event);
            i
        } else {
            self.nodes.push(Node {
                at,
                ord,
                seq,
                next: NIL,
                event: Some(event),
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Returns a node's payload and recycles it onto the free list.
    fn release(&mut self, i: u32) -> (Time, u64, u64, E) {
        let n = &mut self.nodes[i as usize];
        let event = n.event.take().expect("releasing an occupied node");
        let out = (n.at, n.ord, n.seq, event);
        n.next = self.free;
        self.free = i;
        out
    }

    /// `(time, ord, seq)` key of a live node.
    fn key(&self, i: u32) -> (Time, u64, u64) {
        let n = &self.nodes[i as usize];
        (n.at, n.ord, n.seq)
    }

    /// Threads `node` into bucket `b`'s sorted list and returns the walk
    /// length. Past-tail keys (every same-time burst, thanks to
    /// increasing seq) append in O(1); otherwise a short walk finds the
    /// slot — expected O(1) because the resize policy keeps bucket
    /// occupancy near one, and walks past `WALK_LIMIT` make the caller
    /// re-derive the geometry.
    fn insert_bucket(&mut self, b: usize, node: u32) -> u32 {
        let key = self.key(node);
        let head = self.heads[b];
        let mut walk = 0;
        if head == NIL {
            self.heads[b] = node;
            self.tails[b] = node;
        } else if key > self.key(self.tails[b]) {
            let t = self.tails[b] as usize;
            self.nodes[t].next = node;
            self.tails[b] = node;
        } else if key < self.key(head) {
            self.nodes[node as usize].next = head;
            self.heads[b] = node;
        } else {
            let mut prev = head;
            loop {
                let nx = self.nodes[prev as usize].next;
                debug_assert_ne!(nx, NIL, "walk ran past a tail-bounded key");
                if key < self.key(nx) {
                    self.nodes[node as usize].next = nx;
                    self.nodes[prev as usize].next = node;
                    break;
                }
                prev = nx;
                walk += 1;
            }
        }
        self.in_buckets += 1;
        walk
    }

    /// Unlinks and returns bucket `b`'s head node (its minimum).
    fn pop_bucket(&mut self, b: usize) -> u32 {
        let i = self.heads[b];
        debug_assert_ne!(i, NIL, "popping an empty bucket");
        let nx = self.nodes[i as usize].next;
        self.heads[b] = nx;
        if nx == NIL {
            self.tails[b] = NIL;
        }
        self.in_buckets -= 1;
        i
    }

    /// Re-anchors the year window at `base` (aligned down to a bucket
    /// boundary): flushes any bucketed events to overflow, then pours
    /// every overflow event that falls inside the new year into its
    /// bucket. Used both to advance the year (buckets already empty) and
    /// to rewind it when an event is scheduled before `year_start`.
    fn rebase(&mut self, base: Time) {
        if self.in_buckets > 0 {
            for b in 0..self.heads.len() {
                let mut i = self.heads[b];
                while i != NIL {
                    let next = self.nodes[i as usize].next;
                    let (at, ord, seq, event) = self.release(i);
                    self.overflow.push(Reverse(Entry {
                        at,
                        ord,
                        seq,
                        event,
                    }));
                    i = next;
                }
                self.heads[b] = NIL;
                self.tails[b] = NIL;
            }
            self.in_buckets = 0;
        }
        self.year_start = (base.as_ps() >> self.width_log2) << self.width_log2;
        self.cur_bucket = 0;
        // Ascending pops mean every bucket insert below is a tail append.
        while let Some(Reverse(e)) = self.overflow.peek() {
            let idx = (e.at.as_ps() - self.year_start) >> self.width_log2;
            if idx >= self.heads.len() as u64 {
                break;
            }
            let Reverse(Entry {
                at,
                ord,
                seq,
                event,
            }) = self.overflow.pop().expect("peeked");
            let node = self.alloc(at, ord, seq, event);
            self.insert_bucket(idx as usize, node);
        }
    }

    /// Rebuilds the calendar geometry from the live event population:
    /// bucket count tracks the pending-event count (clamped to
    /// `[MIN_BUCKETS, MAX_BUCKETS]`), bucket width tracks the average
    /// event spacing (rounded up to a power of two so bucket indexing is
    /// a shift). Below `ENGAGE_LEN` the calendar disengages entirely.
    fn rebuild(&mut self) {
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.length);
        for b in 0..self.heads.len() {
            let mut i = self.heads[b];
            while i != NIL {
                let next = self.nodes[i as usize].next;
                let (at, ord, seq, event) = self.release(i);
                all.push(Entry {
                    at,
                    ord,
                    seq,
                    event,
                });
                i = next;
            }
        }
        self.in_buckets = 0;
        self.cur_bucket = 0;
        let old_geometry = (self.width_log2, self.heads.len());
        // `all` now holds the bucketed events in globally ascending order
        // (bucket lists are sorted and bucket ranges ascend — invariant
        // 1), and every overflow event sorts after every bucketed one.
        let ascending_prefix = all.len();
        all.extend(self.overflow.drain().map(|Reverse(e)| e));
        if self.length < ENGAGE_LEN {
            // Disengage: back to the plain heap; slab memory released.
            self.heads = Vec::new();
            self.tails = Vec::new();
            self.nodes = Vec::new();
            self.free = NIL;
            self.overflow = BinaryHeap::from(all.into_iter().map(Reverse).collect::<Vec<_>>());
            return;
        }
        let ascending_prefix = if ascending_prefix >= 2 {
            ascending_prefix
        } else {
            // Engaging straight out of the heap (or everything had
            // marched into overflow): order the population so the head
            // sample below exists and reinserts tail-append.
            all.sort_unstable_by_key(|e| (e.at, e.ord, e.seq));
            all.len()
        };
        let nbuckets = (self.length * 2)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        // Bucket width from the spacing of events *near the head* (the
        // calendar-queue sampling rule): a global span/len average goes
        // wrong under skew — a dense pack plus a few far-future
        // stragglers yields a width that dumps the whole pack into one
        // bucket. The head sample sizes buckets for the events that will
        // actually pop next; stragglers simply wait in overflow.
        let m = ascending_prefix.min(HEAD_SAMPLE);
        let spread = all[m - 1].at.as_ps() - all[0].at.as_ps();
        // Saturate and clamp: a head sample spanning >= 2^62 ps (times
        // near `Time::MAX`) must yield a huge width, not a multiply
        // overflow or a `next_power_of_two` panic.
        let width = (spread / (m as u64 - 1))
            .saturating_mul(2)
            .clamp(1, 1 << 62)
            .next_power_of_two();
        let min_ps = all[0].at.as_ps();
        self.width_log2 = width.trailing_zeros();
        self.year_start = (min_ps >> self.width_log2) << self.width_log2;
        // Walk-trigger cooldown: while the population's spacing is still
        // drifting (a compressing hold pattern shrinks the span for
        // hundreds of turnovers), each rebuild lands a different width —
        // re-arm quickly so the geometry tracks the drift. Once a rebuild
        // is futile (same geometry), back off to a full turnover.
        self.walk_cooldown = if (self.width_log2, nbuckets) == old_geometry {
            self.length
        } else {
            (self.length / 8).max(MIN_BUCKETS)
        };
        self.heads.clear();
        self.heads.resize(nbuckets, NIL);
        self.tails.clear();
        self.tails.resize(nbuckets, NIL);
        // The ascending prefix reinserts as pure tail appends; the
        // overflow-sourced suffix (if any) is heap-ordered, but those
        // events spread across the fresh geometry or return to overflow,
        // so their walks stay short.
        for Entry {
            at,
            ord,
            seq,
            event,
        } in all
        {
            let idx = (at.as_ps() - self.year_start) >> self.width_log2;
            if idx < nbuckets as u64 {
                let node = self.alloc(at, ord, seq, event);
                self.insert_bucket(idx as usize, node);
            } else {
                self.overflow.push(Reverse(Entry {
                    at,
                    ord,
                    seq,
                    event,
                }));
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// The dense reference event queue: one global binary heap ordered by
/// `(time, seq)`.
///
/// This is the pre-calendar-queue implementation, kept as an executable
/// specification: `prop_sim` drives random schedule/pop scripts through
/// both queues and requires bit-identical results, and the
/// `sim/event_queue` criterion bench measures the calendar queue's win
/// against it. Same API as [`EventQueue`]; O(log n) per operation.
///
/// ```
/// use edm_sim::{BinaryHeapEventQueue, Time};
///
/// let mut q = BinaryHeapEventQueue::new();
/// q.schedule(Time::from_ns(20), 'b');
/// q.schedule(Time::from_ns(10), 'a');
/// assert_eq!(q.pop(), Some((Time::from_ns(10), 'a')));
/// assert_eq!(q.pop(), Some((Time::from_ns(20), 'b')));
/// ```
#[derive(Debug)]
pub struct BinaryHeapEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

impl<E> BinaryHeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at` (order key 0).
    pub fn schedule(&mut self, at: Time, event: E) {
        self.schedule_ordered(at, 0, event);
    }

    /// Schedules `event` at `at` with an explicit order key — same
    /// semantics as [`EventQueue::schedule_ordered`].
    pub fn schedule_ordered(&mut self, at: Time, ord: u64, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            at,
            ord,
            seq,
            event,
        }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for BinaryHeapEventQueue<E> {
    fn default() -> Self {
        BinaryHeapEventQueue::new()
    }
}

/// Simulation state that reacts to events.
pub trait World {
    /// The event type this world processes.
    type Event;

    /// Handles one event at simulated time `now`.
    ///
    /// Follow-up events are scheduled through `queue`; scheduling in the
    /// past is permitted by the queue but will be caught by the engine's
    /// monotonicity check when the event is popped.
    fn handle(&mut self, now: Time, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Drives a [`World`] until the event queue drains (or a step budget or
/// time horizon is reached).
///
/// ```
/// use edm_sim::{Engine, EventQueue, Time, Duration, World};
///
/// /// Doubles a counter on every event until it saturates.
/// struct Doubler { value: u64 }
/// impl World for Doubler {
///     type Event = ();
///     fn handle(&mut self, now: Time, _ev: (), q: &mut EventQueue<()>) {
///         self.value *= 2;
///         if self.value < 64 {
///             q.schedule(now + Duration::from_ns(3), ());
///         }
///     }
/// }
///
/// let mut eng = Engine::new(Doubler { value: 1 });
/// eng.queue_mut().schedule(Time::ZERO, ());
/// eng.run_until(Time::from_ns(6)); // processes events at 0, 3 and 6 ns
/// assert_eq!(eng.world().value, 8);
/// eng.run(); // drain the rest
/// assert_eq!(eng.world().value, 64);
/// assert_eq!(eng.steps(), 6);
/// ```
#[derive(Debug)]
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: Time,
    steps: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine around `world` with an empty event queue.
    pub fn new(world: W) -> Self {
        Engine::with_queue(world, EventQueue::new())
    }

    /// Creates an engine around `world` with a pre-seeded event queue —
    /// for setups that must mutate the world and schedule seed events in
    /// the same pass (e.g. admitting pre-loaded flows) before handing
    /// both to the engine.
    pub fn with_queue(world: W, queue: EventQueue<W::Event>) -> Self {
        Engine {
            world,
            queue,
            now: Time::ZERO,
            steps: 0,
        }
    }

    /// The current simulated time (time of the last dispatched event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Mutable access to the event queue (e.g. to seed initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Dispatches a single event. Returns `false` if the queue was empty.
    ///
    /// # Panics
    ///
    /// Panics if an event was scheduled before the current simulated time
    /// (causality violation).
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, ev)) => {
                assert!(
                    at >= self.now,
                    "causality violation: event at {at} popped at {now}",
                    now = self.now
                );
                self.now = at;
                self.steps += 1;
                self.world.handle(at, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are processed.
    pub fn run_until(&mut self, horizon: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
    }

    /// Runs at most `max_steps` more events (or until the queue drains).
    /// Returns the number of events actually dispatched.
    pub fn run_steps(&mut self, max_steps: u64) -> u64 {
        let mut done = 0;
        while done < max_steps && self.step() {
            done += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[derive(Default)]
    struct Recorder {
        log: Vec<(Time, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: Time, ev: u32, q: &mut EventQueue<u32>) {
            self.log.push((now, ev));
            if ev == 1 {
                // Chain two follow-ups at the same future instant: FIFO order
                // must be preserved.
                q.schedule(now + Duration::from_ns(5), 10);
                q.schedule(now + Duration::from_ns(5), 11);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = Engine::new(Recorder::default());
        eng.queue_mut().schedule(Time::from_ns(30), 3);
        eng.queue_mut().schedule(Time::from_ns(10), 1);
        eng.queue_mut().schedule(Time::from_ns(20), 2);
        eng.run();
        let evs: Vec<u32> = eng.world().log.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![1, 10, 11, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut eng = Engine::new(Recorder::default());
        for i in 0..100 {
            eng.queue_mut().schedule(Time::from_ns(7), i + 100);
        }
        eng.run();
        let evs: Vec<u32> = eng.world().log.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, (100..200).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_horizon_is_inclusive() {
        let mut eng = Engine::new(Recorder::default());
        eng.queue_mut().schedule(Time::from_ns(10), 2);
        eng.queue_mut().schedule(Time::from_ns(20), 3);
        eng.queue_mut().schedule(Time::from_ns(30), 4);
        eng.run_until(Time::from_ns(20));
        assert_eq!(eng.world().log.len(), 2);
        assert_eq!(eng.queue_mut().len(), 1);
    }

    #[test]
    fn run_steps_budget() {
        let mut eng = Engine::new(Recorder::default());
        for i in 0..10 {
            eng.queue_mut().schedule(Time::from_ns(i), i as u32);
        }
        assert_eq!(eng.run_steps(4), 4);
        assert_eq!(eng.world().log.len(), 4);
        // Event `1` spawned two follow-ups, so 8 remain of the original 10.
        assert_eq!(eng.run_steps(100), 8);
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut eng = Engine::new(Recorder::default());
        assert!(!eng.step());
        assert_eq!(eng.now(), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn past_scheduling_panics_on_dispatch() {
        struct Bad;
        impl World for Bad {
            type Event = bool;
            fn handle(&mut self, _now: Time, first: bool, q: &mut EventQueue<bool>) {
                if first {
                    q.schedule(Time::ZERO, false); // in the past
                }
            }
        }
        let mut eng = Engine::new(Bad);
        eng.queue_mut().schedule(Time::from_ns(10), true);
        eng.run();
    }

    #[test]
    fn queue_len_and_peek() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_ns(4), 1);
        q.schedule(Time::from_ns(2), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
    }

    // ------------------------------------------------------------------
    // Adversarial calendar-queue cases.
    // ------------------------------------------------------------------

    /// Drains `q` and asserts the exact `(time, tag)` sequence matches
    /// what the binary-heap reference produces for the same schedule.
    fn assert_drains_like_reference(q: &mut EventQueue<u32>, scheduled: &[(Time, u32)]) {
        let mut reference = BinaryHeapEventQueue::new();
        for &(t, tag) in scheduled {
            reference.schedule(t, tag);
        }
        loop {
            assert_eq!(q.peek_time(), reference.peek_time());
            let (a, b) = (q.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn zero_capacity_start() {
        // A fresh queue has no buckets at all; every path must still work.
        let mut q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_ns(3), 7);
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
        assert_eq!(q.pop(), Some((Time::from_ns(3), 7)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn single_bucket_degeneracy() {
        // All events at the same instant: span is zero, so after the
        // calendar engages everything collapses into one bucket. Order
        // must stay exact schedule order.
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut scheduled = Vec::new();
        for i in 0..200 {
            q.schedule(Time::from_ns(42), i);
            scheduled.push((Time::from_ns(42), i));
        }
        assert_drains_like_reference(&mut q, &scheduled);
    }

    #[test]
    fn far_future_overflow_drain() {
        // A tight cluster engages the calendar with a narrow bucket width;
        // the year horizon is then far below the far-future timers, which
        // must wait in overflow and drain in exact order once the cluster
        // is exhausted — including ties among the far-future events.
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut scheduled = Vec::new();
        for i in 0..64u32 {
            let t = Time::from_ps(i as u64);
            q.schedule(t, i);
            scheduled.push((t, i));
        }
        for i in 0..32u32 {
            // Seconds away from the ps-scale cluster, with duplicates.
            let t = Time::from_us(1_000_000 + (i as u64 / 2));
            q.schedule(t, 1_000 + i);
            scheduled.push((t, 1_000 + i));
        }
        assert_drains_like_reference(&mut q, &scheduled);
    }

    #[test]
    fn peek_and_pop_agree_across_resizes() {
        // Grow through several rebuilds, then drain through the shrink and
        // disengage thresholds, checking peek/pop agreement at every step.
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut reference = BinaryHeapEventQueue::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut tag = 0u32;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        for round in 0..6 {
            for _ in 0..(64 << round.min(3)) {
                let t = Time::from_ps(lcg() % 1_000_000_000);
                q.schedule(t, tag);
                reference.schedule(t, tag);
                tag += 1;
            }
            for _ in 0..(48 << round.min(3)) {
                assert_eq!(q.peek_time(), reference.peek_time());
                assert_eq!(q.pop(), reference.pop());
                assert_eq!(q.len(), reference.len());
            }
        }
        loop {
            assert_eq!(q.peek_time(), reference.peek_time());
            let (a, b) = (q.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn rewind_before_year_start() {
        // Engage the calendar on a late cluster, drain part of it, then
        // schedule earlier than the year's start: the window must rewind
        // and the early events must pop first.
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut reference = BinaryHeapEventQueue::new();
        let mut tag = 0u32;
        for i in 0..64u32 {
            let t = Time::from_us(500 + i as u64);
            q.schedule(t, tag);
            reference.schedule(t, tag);
            tag += 1;
        }
        for _ in 0..8 {
            assert_eq!(q.pop(), reference.pop());
        }
        for i in 0..16u32 {
            let t = Time::from_ns(i as u64);
            q.schedule(t, tag);
            reference.schedule(t, tag);
            tag += 1;
        }
        loop {
            assert_eq!(q.peek_time(), reference.peek_time());
            let (a, b) = (q.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn giant_span_geometry_saturates() {
        // Head-sample spans near u64::MAX must clamp the width instead of
        // overflowing the multiply or panicking in next_power_of_two.
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut scheduled = Vec::new();
        for i in 0..16u32 {
            let t = Time::from_ps(i as u64);
            q.schedule(t, i);
            scheduled.push((t, i));
        }
        for i in 0..16u32 {
            let t = Time::from_ps(u64::MAX - 1_000 + (i as u64 % 4));
            q.schedule(t, 100 + i);
            scheduled.push((t, 100 + i));
        }
        assert_drains_like_reference(&mut q, &scheduled);
    }

    #[test]
    fn order_keys_break_same_time_ties() {
        // Same-instant events pop by ascending order key regardless of
        // schedule order; FIFO only within a key. Checked against the
        // heap reference through a resize-heavy population.
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut reference = BinaryHeapEventQueue::new();
        let mut tag = 0u32;
        for round in 0..8u64 {
            for i in 0..40u64 {
                let t = Time::from_ns(100 * round + (i % 3));
                let ord = (97 * i + round) % 7;
                q.schedule_ordered(t, ord, tag);
                reference.schedule_ordered(t, ord, tag);
                tag += 1;
            }
        }
        loop {
            assert_eq!(q.peek_time(), reference.peek_time());
            let (a, b) = (q.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn ordered_and_plain_scheduling_mix() {
        // Plain `schedule` is ord 0: it sorts before any positive key at
        // the same instant and keeps FIFO among itself.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_ordered(Time::from_ns(5), 9, 2);
        q.schedule(Time::from_ns(5), 0);
        q.schedule(Time::from_ns(5), 1);
        q.schedule_ordered(Time::from_ns(5), 3, 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 3, 2]);
    }

    #[test]
    fn slab_recycles_nodes() {
        // Steady-state churn at a fixed queue size must not grow the slab
        // beyond the peak population (allocation-free hold loop).
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..256u32 {
            q.schedule(Time::from_ps(i as u64 * 1_000), i);
        }
        for _ in 0..10_000 {
            let (at, ev) = q.pop().unwrap();
            q.schedule(at + Duration::from_ps(257_000), ev);
        }
        assert_eq!(q.len(), 256);
        assert!(
            q.nodes.len() <= 256,
            "slab grew past peak population: {}",
            q.nodes.len()
        );
    }
}
