//! Deterministic random number generation and sampling.
//!
//! A self-contained xoshiro256++ implementation (seeded through SplitMix64)
//! keeps the whole workspace deterministic and independent of external RNG
//! crate version bumps. The distributions provided are exactly those the
//! paper's workloads need:
//!
//! * uniform integers/floats — object selection, port selection;
//! * exponential — Poisson inter-arrival times for offered-load sweeps;
//! * [`EmpiricalCdf`] — message-size sampling from application CDF profiles
//!   (the paper's §A.3.4 trace-generation method);
//! * Zipf — skewed key popularity for the YCSB key-value workloads.

use crate::time::Duration;

/// A seedable xoshiro256++ pseudo-random generator.
///
/// ```
/// use edm_sim::Rng;
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Creates the generator for one *substream* of a seed: a splittable
    /// stream derivation that depends only on `(seed, stream)`, never on
    /// draw order or on how many sibling streams exist.
    ///
    /// This is what keeps parallel or sharded generation deterministic:
    /// give each independent entity (a workload's source node, a fabric
    /// link) its own stream index and the generated sequence is
    /// identical no matter how the entities are chunked across threads
    /// or shards.
    ///
    /// ```
    /// use edm_sim::Rng;
    /// let mut a = Rng::stream(42, 3);
    /// let mut b = Rng::stream(42, 3);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// assert_ne!(Rng::stream(42, 3).next_u64(), Rng::stream(42, 4).next_u64());
    /// ```
    pub fn stream(seed: u64, stream: u64) -> Self {
        // Decorrelate the stream index through one SplitMix64 round
        // before folding it into the seed, so adjacent indices land in
        // unrelated regions of the seed space.
        let mut sm = stream.wrapping_add(0xA0761D6478BD642F);
        Rng::seed_from(seed ^ splitmix64(&mut sm))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`, bias-free via rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's method with rejection to remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Avoid ln(0) by using (1 - u) in (0, 1].
        -mean * (1.0 - self.f64()).ln()
    }

    /// Exponentially distributed duration (Poisson inter-arrival gap).
    pub fn exp_duration(&mut self, mean: Duration) -> Duration {
        Duration::from_ps(self.exponential(mean.as_ps() as f64).round() as u64)
    }

    /// Random permutation index sequence (Fisher–Yates shuffle).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

/// An inverse-transform sampler over an empirical CDF of message sizes.
///
/// This mirrors the paper's trace-generation method (§A.3.4): given CDF
/// control points `(size, cumulative_probability)`, samples are drawn by
/// inverting the CDF with log-linear interpolation between points, which is
/// the standard approach for heavy-tailed flow-size CDFs.
///
/// ```
/// use edm_sim::rng::{EmpiricalCdf, Rng};
/// let cdf = EmpiricalCdf::new(vec![(64, 0.5), (1024, 0.9), (65536, 1.0)]).unwrap();
/// let mut rng = Rng::seed_from(1);
/// let s = cdf.sample(&mut rng);
/// assert!((64..=65536).contains(&s));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    /// (value, cumulative probability), strictly increasing in both fields,
    /// last probability == 1.0.
    points: Vec<(u64, f64)>,
}

/// Error constructing an [`EmpiricalCdf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdfError {
    /// No control points were supplied.
    Empty,
    /// Values or probabilities are not strictly increasing.
    NotMonotone,
    /// The final cumulative probability is not 1.0.
    DoesNotReachOne,
}

impl std::fmt::Display for CdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdfError::Empty => write!(f, "empirical CDF needs at least one point"),
            CdfError::NotMonotone => write!(f, "CDF points must be strictly increasing"),
            CdfError::DoesNotReachOne => write!(f, "final CDF probability must be 1.0"),
        }
    }
}

impl std::error::Error for CdfError {}

impl EmpiricalCdf {
    /// Builds a CDF from `(value, cumulative_probability)` control points.
    ///
    /// # Errors
    ///
    /// Returns an error if points are empty, not strictly increasing, or the
    /// final probability is not 1.0.
    pub fn new(points: Vec<(u64, f64)>) -> Result<Self, CdfError> {
        if points.is_empty() {
            return Err(CdfError::Empty);
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 || w[1].1 <= w[0].1 {
                return Err(CdfError::NotMonotone);
            }
        }
        if (points.last().unwrap().1 - 1.0).abs() > 1e-9 {
            return Err(CdfError::DoesNotReachOne);
        }
        Ok(EmpiricalCdf { points })
    }

    /// Draws one sample by inverse-transform with log-linear interpolation.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        self.quantile(u)
    }

    /// The value at cumulative probability `u` (clamped to `[0, 1]`).
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let mut prev = (self.points[0].0, 0.0f64);
        for &(v, p) in &self.points {
            if u <= p {
                let (v0, p0) = prev;
                if p <= p0 + 1e-12 || v0 == v {
                    return v;
                }
                let frac = (u - p0) / (p - p0);
                // Log-linear interpolation in value space (sizes span orders
                // of magnitude in heavy-tailed workloads).
                let lv0 = (v0.max(1)) as f64;
                let lv1 = v as f64;
                let val = (lv0.ln() + frac * (lv1.ln() - lv0.ln())).exp();
                return val.round().max(1.0) as u64;
            }
            prev = (v, p);
        }
        self.points.last().unwrap().0
    }

    /// Mean of the distribution, estimated by trapezoidal integration of the
    /// quantile function (adequate for load calibration).
    pub fn mean(&self) -> f64 {
        let steps = 10_000;
        let mut acc = 0.0;
        for i in 0..steps {
            let u = (i as f64 + 0.5) / steps as f64;
            acc += self.quantile(u) as f64;
        }
        acc / steps as f64
    }

    /// The maximum value in the support.
    pub fn max_value(&self) -> u64 {
        self.points.last().unwrap().0
    }
}

/// A Zipf-distributed sampler over `[0, n)` with exponent `theta`.
///
/// Used for skewed key popularity in the YCSB workloads. Implements the
/// rejection-inversion method of Hörmann–Derflinger, which needs no O(n)
/// precomputation.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `n` items with skew `theta` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let h = |x: f64| ((1.0 - theta) * x.ln()).exp() / (1.0 - theta) * x.powf(-theta) * x;
        // Standard helper: H(x) = x^(1-theta) / (1-theta)
        let cap_h = |x: f64| x.powf(1.0 - theta) / (1.0 - theta);
        let _ = h;
        let h_x1 = cap_h(1.5) - 1.0;
        let h_n = cap_h(n as f64 + 0.5);
        let s = 2.0 - {
            // H^-1(H(2.5) - 2^-theta) (constant from the algorithm)
            let x = cap_h(2.5) - (2.0f64).powf(-theta);
            (x * (1.0 - theta)).powf(1.0 / (1.0 - theta))
        };
        Zipf {
            n,
            theta,
            h_x1,
            h_n,
            s,
        }
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let cap_h_inv = |x: f64| (x * (1.0 - self.theta)).powf(1.0 / (1.0 - self.theta));
        let cap_h = |x: f64| x.powf(1.0 - self.theta) / (1.0 - self.theta);
        loop {
            let u = self.h_x1 + rng.f64() * (self.h_n - self.h_x1);
            let x = cap_h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if (k - x).abs() <= self.s || u >= cap_h(k + 0.5) - (-(k.ln() * self.theta)).exp() {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut rng = Rng::seed_from(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from(2);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = Rng::seed_from(3);
        let n = 200_000;
        let mean = 50.0;
        let total: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let emp = total / n as f64;
        assert!(
            (emp - mean).abs() / mean < 0.02,
            "empirical mean {emp} too far from {mean}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn cdf_validation() {
        assert_eq!(EmpiricalCdf::new(vec![]).unwrap_err(), CdfError::Empty);
        assert_eq!(
            EmpiricalCdf::new(vec![(10, 0.5), (5, 1.0)]).unwrap_err(),
            CdfError::NotMonotone
        );
        assert_eq!(
            EmpiricalCdf::new(vec![(10, 0.5), (20, 0.8)]).unwrap_err(),
            CdfError::DoesNotReachOne
        );
        assert!(EmpiricalCdf::new(vec![(10, 1.0)]).is_ok());
    }

    #[test]
    fn cdf_sample_within_support() {
        let cdf = EmpiricalCdf::new(vec![(64, 0.3), (512, 0.7), (16384, 1.0)]).unwrap();
        let mut rng = Rng::seed_from(5);
        for _ in 0..10_000 {
            let s = cdf.sample(&mut rng);
            assert!((1..=16384).contains(&s));
        }
    }

    #[test]
    fn cdf_quantile_hits_control_points() {
        let cdf = EmpiricalCdf::new(vec![(64, 0.25), (1024, 1.0)]).unwrap();
        assert_eq!(cdf.quantile(0.25), 64);
        assert_eq!(cdf.quantile(1.0), 1024);
        assert_eq!(cdf.quantile(0.0), 64);
        let mid = cdf.quantile(0.625); // halfway between control points
        assert!(mid > 64 && mid < 1024);
    }

    #[test]
    fn cdf_mean_reasonable() {
        // Single-point CDF: all mass at 100.
        let cdf = EmpiricalCdf::new(vec![(100, 1.0)]).unwrap();
        assert!((cdf.mean() - 100.0).abs() < 1.0);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = Rng::seed_from(6);
        let n = 100_000;
        let mut top10 = 0u32;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                top10 += 1;
            }
        }
        // With theta=0.9 the top-10 of 1000 items should draw a large share.
        assert!(
            top10 as f64 / n as f64 > 0.3,
            "top-10 share {} too small",
            top10 as f64 / n as f64
        );
    }

    #[test]
    fn exp_duration_zero_mean_guard() {
        let mut rng = Rng::seed_from(9);
        let d = rng.exp_duration(crate::time::Duration::from_ns(100));
        assert!(d.as_ps() < 10_000_000); // sanity: not absurd
    }
}
