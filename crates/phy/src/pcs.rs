//! The composed PCS pipeline of Figure 3: everything between the MAC's
//! reconciliation sublayer and the PMA, on both directions.
//!
//! ```text
//!   egress:  encoder -> EDM TX (preemption mux) -> scrambler -> (PMA)
//!   ingress: (PMA) -> block sync -> descrambler -> EDM RX -> decoder
//! ```
//!
//! [`PcsTx`] accepts MAC frames and EDM memory messages, emits scrambled
//! 66-bit wire words; [`PcsRx`] locks onto the block boundaries (the
//! `Blocksync` box of Figure 3), descrambles, extracts memory traffic
//! with zero buffering, and re-contiguizes preempted frames for the
//! standard decoder. A [`PcsTx`]→[`PcsRx`] loopback is bit-exact.
//!
//! Wire format per block: 66 bits as `(sync: 2 bits, payload: 64 bits)`,
//! carried here as a `(SyncHeader, u64)` pair after serialization — the
//! gearbox's 66-to-64-bit lane packing is a pure bit-shuffle with no
//! architectural effect and is modelled as the identity.

use crate::block::{Block, SyncHeader, WireError};
use crate::frame::{encode_frame, FrameError};
use crate::mem_codec::{encode_message, MemMessage};
use crate::preempt::{PreemptMux, RxError, RxOutput, RxReorderBuffer, TxPolicy};
use crate::scramble::{Descrambler, Scrambler};

/// A scrambled 66-bit wire word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireWord {
    /// The 2-bit sync header (transmitted in the clear).
    pub sync: SyncHeader,
    /// The scrambled 64-bit payload.
    pub payload: u64,
}

/// The transmit-side PCS pipeline.
#[derive(Debug)]
pub struct PcsTx {
    mux: PreemptMux,
    scrambler: Scrambler,
    blocks_sent: u64,
}

impl PcsTx {
    /// Creates a TX pipeline with the given preemption policy.
    pub fn new(policy: TxPolicy) -> Self {
        PcsTx {
            mux: PreemptMux::new(policy),
            scrambler: Scrambler::default(),
            blocks_sent: 0,
        }
    }

    /// Queues a MAC frame for transmission (the encoder step).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooShort`] for sub-64 B frames.
    pub fn send_frame(&mut self, frame: &[u8]) -> Result<(), FrameError> {
        let blocks = encode_frame(frame)?;
        self.mux.enqueue_frame(blocks);
        Ok(())
    }

    /// Queues an EDM memory message (the EDM TX step).
    pub fn send_message(&mut self, msg: &MemMessage) {
        self.mux.enqueue_memory(encode_message(msg));
    }

    /// Queues a raw EDM control block (`/N/` or `/G/`).
    ///
    /// # Panics
    ///
    /// Panics if the block is not a memory-path block.
    pub fn send_control(&mut self, block: Block) {
        self.mux.enqueue_memory(vec![block]);
    }

    /// Advances one block clock: multiplexes, scrambles, emits one wire
    /// word (idle blocks fill empty slots, as on a real link).
    pub fn tick(&mut self) -> WireWord {
        let block = self.mux.tick();
        let (sync, clear) = block.to_wire();
        self.blocks_sent += 1;
        WireWord {
            sync,
            payload: self.scrambler.scramble(clear),
        }
    }

    /// Whether any traffic is still queued.
    pub fn is_idle(&self) -> bool {
        self.mux.pending_memory_blocks() == 0 && self.mux.pending_frame_blocks() == 0
    }

    /// Total blocks emitted.
    pub fn blocks_sent(&self) -> u64 {
        self.blocks_sent
    }
}

/// Errors from the receive pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcsRxError {
    /// The descrambled payload was not a legal block (corruption).
    Wire(WireError),
    /// The block sequence violated the TX contract (corruption).
    Sequence(RxError),
    /// Receiver has not yet acquired block lock.
    NotLocked,
}

impl std::fmt::Display for PcsRxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcsRxError::Wire(e) => write!(f, "wire error: {e}"),
            PcsRxError::Sequence(e) => write!(f, "sequence error: {e}"),
            PcsRxError::NotLocked => write!(f, "block sync not acquired"),
        }
    }
}

impl std::error::Error for PcsRxError {}

/// Blocks of consecutive valid sync headers required to declare lock
/// (IEEE 802.3 clause 49 uses 64; the mechanism is what matters here).
pub const SYNC_LOCK_THRESHOLD: u32 = 64;
/// Invalid sync headers within a window that drop lock.
pub const SYNC_LOSS_THRESHOLD: u32 = 16;

/// The receive-side PCS pipeline: block sync, descrambler, EDM RX,
/// decoder feed.
#[derive(Debug)]
pub struct PcsRx {
    descrambler: Descrambler,
    reorder: RxReorderBuffer,
    locked: bool,
    good_syncs: u32,
    bad_syncs: u32,
    blocks_received: u64,
}

impl PcsRx {
    /// Creates an RX pipeline (initially unlocked; feed it idles to lock,
    /// or use [`PcsRx::assume_locked`] for loopback tests).
    pub fn new() -> Self {
        PcsRx {
            descrambler: Descrambler::default(),
            reorder: RxReorderBuffer::new(),
            locked: false,
            good_syncs: 0,
            bad_syncs: 0,
            blocks_received: 0,
        }
    }

    /// Creates an RX pipeline that is already block-locked (links in the
    /// testbed are brought up before traffic).
    pub fn assume_locked() -> Self {
        PcsRx {
            locked: true,
            ..PcsRx::new()
        }
    }

    /// Whether block lock is held.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Total blocks processed after lock.
    pub fn blocks_received(&self) -> u64 {
        self.blocks_received
    }

    /// Processes one wire word.
    ///
    /// Before lock, words only feed the sync state machine and produce no
    /// output. After lock, each word is descrambled, classified, and —
    /// for memory blocks — delivered immediately; completed non-memory
    /// frames are released contiguously.
    ///
    /// # Errors
    ///
    /// Corruption surfaces as [`PcsRxError::Wire`]/[`PcsRxError::Sequence`]
    /// (in the architecture, these feed the §3.3 link monitor).
    pub fn receive(&mut self, word: WireWord) -> Result<RxOutput, PcsRxError> {
        if !self.locked {
            // The sync header of every legal 66-bit block is 01 or 10;
            // a real implementation hunts for an alignment with a run of
            // valid headers. Our words are always aligned, so every word
            // counts toward lock.
            self.good_syncs += 1;
            if self.good_syncs >= SYNC_LOCK_THRESHOLD {
                self.locked = true;
            }
            // Run the descrambler during acquisition so its state is
            // synchronized by the time lock is declared.
            let _ = self.descrambler.descramble(word.payload);
            return Err(PcsRxError::NotLocked);
        }
        self.blocks_received += 1;
        let clear = self.descrambler.descramble(word.payload);
        let block = Block::from_wire(word.sync, clear).map_err(|e| {
            self.bad_syncs += 1;
            if self.bad_syncs >= SYNC_LOSS_THRESHOLD {
                self.locked = false;
                self.good_syncs = 0;
                self.bad_syncs = 0;
            }
            PcsRxError::Wire(e)
        })?;
        self.bad_syncs = 0;
        self.reorder.push(block).map_err(PcsRxError::Sequence)
    }
}

impl Default for PcsRx {
    fn default() -> Self {
        PcsRx::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::decode_frame;
    use crate::mem_codec::decode_message;

    /// Runs a TX->RX loopback until TX drains, returning the extracted
    /// memory blocks and completed frames.
    fn loopback(tx: &mut PcsTx, rx: &mut PcsRx) -> (Vec<Block>, Vec<Vec<Block>>) {
        let mut mem = Vec::new();
        let mut frames = Vec::new();
        while !tx.is_idle() {
            let out = rx.receive(tx.tick()).expect("clean link");
            mem.extend(out.mem);
            if let Some(f) = out.frame {
                frames.push(f);
            }
        }
        (mem, frames)
    }

    #[test]
    fn loopback_frame_bit_exact() {
        let mut tx = PcsTx::new(TxPolicy::Fair);
        let mut rx = PcsRx::assume_locked();
        let frame: Vec<u8> = (0..999).map(|i| (i % 241) as u8).collect();
        tx.send_frame(&frame).unwrap();
        let (_, frames) = loopback(&mut tx, &mut rx);
        assert_eq!(decode_frame(&frames[0]).unwrap(), frame);
    }

    #[test]
    fn loopback_interleaved_memory_and_frames() {
        let mut tx = PcsTx::new(TxPolicy::Fair);
        let mut rx = PcsRx::assume_locked();
        let frame = vec![0x3Cu8; 512];
        tx.send_frame(&frame).unwrap();
        let msg = MemMessage::new(3, 9, vec![0x77; 48]);
        tx.send_message(&msg);
        tx.send_control(Block::Notify {
            dest: 3,
            msg_id: 9,
            size: 48,
        });
        let (mem, frames) = loopback(&mut tx, &mut rx);
        assert_eq!(decode_frame(&frames[0]).unwrap(), frame);
        // The /N/ control block and the full message both arrive.
        assert!(mem
            .iter()
            .any(|b| matches!(b, Block::Notify { size: 48, .. })));
        let msg_blocks: Vec<Block> = mem
            .iter()
            .filter(|b| {
                matches!(
                    b,
                    Block::MemStart(_) | Block::MemData(_) | Block::MemTerminate { .. }
                )
            })
            .cloned()
            .collect();
        assert_eq!(decode_message(&msg_blocks).unwrap(), msg);
    }

    #[test]
    fn block_sync_acquires_after_threshold() {
        let mut tx = PcsTx::new(TxPolicy::Fair);
        let mut rx = PcsRx::new();
        assert!(!rx.is_locked());
        for i in 0..SYNC_LOCK_THRESHOLD {
            let r = rx.receive(tx.tick());
            assert_eq!(r.unwrap_err(), PcsRxError::NotLocked, "word {i}");
        }
        assert!(rx.is_locked());
        // Post-lock traffic flows normally (descrambler self-synced during
        // acquisition).
        tx.send_message(&MemMessage::new(0, 0, vec![1; 16]));
        let mut mem = Vec::new();
        while !tx.is_idle() {
            mem.extend(rx.receive(tx.tick()).expect("locked link").mem);
        }
        assert_eq!(decode_message(&mem).unwrap().payload(), &[1; 16]);
    }

    #[test]
    fn corruption_is_detected() {
        let mut tx = PcsTx::new(TxPolicy::Fair);
        let mut rx = PcsRx::assume_locked();
        tx.send_message(&MemMessage::new(0, 0, vec![9; 8]));
        let mut word = tx.tick();
        // Corrupt the wire: either the block type becomes illegal or the
        // sequence breaks — in both cases the corruption is observable,
        // feeding the link monitor of §3.3. (A corrupted /MS/ that still
        // parses as some legal control block may surface on a *later*
        // block instead.)
        word.payload ^= 0xFFFF;
        let mut saw_error = rx.receive(word).is_err();
        while !tx.is_idle() {
            saw_error |= rx.receive(tx.tick()).is_err();
        }
        assert!(saw_error, "corruption must not pass silently");
    }

    #[test]
    fn idle_link_stays_idle() {
        let mut tx = PcsTx::new(TxPolicy::Fair);
        let mut rx = PcsRx::assume_locked();
        for _ in 0..100 {
            let out = rx.receive(tx.tick()).expect("idles are legal");
            assert!(out.mem.is_empty());
            assert!(out.frame.is_none());
        }
        assert_eq!(rx.blocks_received(), 100);
    }

    #[test]
    fn sustained_duplex_traffic() {
        // Two independent directions, long alternating traffic; everything
        // must survive bit-exact through scrambling and preemption.
        let mut tx_a = PcsTx::new(TxPolicy::Fair);
        let mut rx_b = PcsRx::assume_locked();
        let mut total_frames = 0;
        let mut total_msgs = 0;
        for round in 0..20u32 {
            let frame = vec![(round % 251) as u8; 64 + (round as usize * 37) % 900];
            tx_a.send_frame(&frame).unwrap();
            tx_a.send_message(&MemMessage::new(1, round as u8, vec![round as u8; 24]));
            let (mem, frames) = loopback(&mut tx_a, &mut rx_b);
            total_frames += frames.len();
            total_msgs += mem
                .iter()
                .filter(|b| matches!(b, Block::MemStart(_)))
                .count();
            assert_eq!(decode_frame(&frames[0]).unwrap(), frame, "round {round}");
        }
        assert_eq!(total_frames, 20);
        assert_eq!(total_msgs, 20);
    }
}
