//! The 66-bit PHY block taxonomy.
//!
//! A 66-bit block is a 2-bit sync header plus 64 payload bits. Data blocks
//! (sync `10`) carry 8 bytes of frame data. Control blocks (sync `01`) carry
//! an 8-bit block-type field plus 56 payload bits (7 bytes).
//!
//! EDM introduces new block types (§3.2) that occupy block-type code points
//! unused by IEEE 802.3:
//!
//! | Block  | Role |
//! |--------|------|
//! | `/MS/` | start of a memory message (control; carries message header) |
//! | `/MD/` | memory data (data-block layout, distinguished by context)   |
//! | `/MT/` | end of a memory message (0–7 trailing bytes)                |
//! | `/MST/`| single-block memory message (≤ 7 bytes total)               |
//! | `/N/`  | demand notification to the switch scheduler                 |
//! | `/G/`  | grant from the switch scheduler                             |

use core::fmt;

/// The 2-bit sync header of a 66-bit block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncHeader {
    /// `10`: the 64 payload bits are all frame data.
    Data,
    /// `01`: the payload starts with an 8-bit block-type field.
    Control,
}

/// IEEE 802.3 block-type code points used by this model.
pub mod block_type {
    /// All-idle control block `/E/` (C0..C7 idle characters).
    pub const IDLE: u8 = 0x1E;
    /// Start block `/S/` (S0 lane alignment); carries 7 data bytes.
    pub const START: u8 = 0x78;
    /// Terminate blocks `/T0/../T7/`: `TERMINATE[k]` ends a frame with `k`
    /// data bytes in the block.
    pub const TERMINATE: [u8; 8] = [0x87, 0x99, 0xAA, 0xB4, 0xCC, 0xD2, 0xE1, 0xFF];

    // EDM block types occupy code points unused by IEEE 802.3 clause 49.
    /// `/MS/` — memory message start.
    pub const MEM_START: u8 = 0x3C;
    /// `/MT0/../MT7/` — memory message terminate with `k` payload bytes.
    pub const MEM_TERMINATE: [u8; 8] = [0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77];
    /// `/MST/` — single-block memory message.
    pub const MEM_SINGLE: u8 = 0x5A;
    /// `/N/` — demand notification.
    pub const NOTIFY: u8 = 0x69;
    /// `/G/` — grant.
    pub const GRANT: u8 = 0x96;
}

/// A decoded 66-bit PHY block.
///
/// This enum is the working representation used throughout the workspace;
/// [`Block::to_wire`]/[`Block::from_wire`] convert to and from the literal
/// 66-bit encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Block {
    /// `/E/` — idle filler (inter-frame gap).
    Idle,
    /// `/S/` — Ethernet frame start, carrying the first 7 bytes.
    Start([u8; 7]),
    /// `/D/` — Ethernet frame data, 8 bytes.
    Data([u8; 8]),
    /// `/T_k/` — Ethernet frame terminate carrying `len` (0–7) final bytes.
    Terminate {
        /// Final frame bytes (only the first `len` are meaningful).
        bytes: [u8; 7],
        /// Number of meaningful bytes, 0–7.
        len: u8,
    },
    /// `/MS/` — memory message start, carrying a 7-byte message header.
    MemStart([u8; 7]),
    /// `/MD/` — memory message data, 8 bytes.
    MemData([u8; 8]),
    /// `/MT_k/` — memory message terminate carrying `len` (0–7) final bytes.
    MemTerminate {
        /// Final message bytes (only the first `len` are meaningful).
        bytes: [u8; 7],
        /// Number of meaningful bytes, 0–7.
        len: u8,
    },
    /// `/MST/` — an entire memory message in one block (≤ 7 bytes, with the
    /// actual length in the low 3 bits of the first payload byte).
    MemSingle {
        /// Message bytes (only the first `len` are meaningful).
        bytes: [u8; 6],
        /// Number of meaningful bytes, 0–6.
        len: u8,
    },
    /// `/N/` — demand notification (§3.1.4): destination port, message id,
    /// message size in bytes.
    Notify {
        /// Destination switch port (9 bits suffice for 512 ports).
        dest: u16,
        /// Message id, distinguishing messages of one source–dest pair.
        msg_id: u8,
        /// Message size in bytes.
        size: u16,
    },
    /// `/G/` — grant (§3.1.4): destination port, message id, chunk size.
    Grant {
        /// Destination port of the granted message.
        dest: u16,
        /// Message id of the granted message.
        msg_id: u8,
        /// Granted chunk size in bytes.
        chunk: u16,
    },
}

impl Block {
    /// The sync header this block uses on the wire.
    pub fn sync_header(&self) -> SyncHeader {
        match self {
            Block::Data(_) | Block::MemData(_) => SyncHeader::Data,
            _ => SyncHeader::Control,
        }
    }

    /// Whether this is one of EDM's memory-path blocks
    /// (`/MS/ /MD/ /MT/ /MST/ /N/ /G/`).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Block::MemStart(_)
                | Block::MemData(_)
                | Block::MemTerminate { .. }
                | Block::MemSingle { .. }
                | Block::Notify { .. }
                | Block::Grant { .. }
        )
    }

    /// Whether this block belongs to a standard Ethernet frame body
    /// (`/S/ /D/ /T/`).
    pub fn is_frame(&self) -> bool {
        matches!(
            self,
            Block::Start(_) | Block::Data(_) | Block::Terminate { .. }
        )
    }

    /// Number of upper-layer data bytes this block carries.
    pub fn data_len(&self) -> usize {
        match self {
            Block::Idle | Block::Notify { .. } | Block::Grant { .. } => 0,
            Block::Start(_) | Block::MemStart(_) => 7,
            Block::Data(_) | Block::MemData(_) => 8,
            Block::Terminate { len, .. } | Block::MemTerminate { len, .. } => *len as usize,
            Block::MemSingle { len, .. } => *len as usize,
        }
    }

    /// Encodes to the literal 66-bit wire form: `(sync, payload)` where the
    /// payload's least-significant byte is the block-type field for control
    /// blocks.
    pub fn to_wire(&self) -> (SyncHeader, u64) {
        fn pack7(bytes: &[u8; 7]) -> u64 {
            let mut v = 0u64;
            for (i, &b) in bytes.iter().enumerate() {
                v |= (b as u64) << (8 * (i + 1));
            }
            v
        }
        match self {
            Block::Idle => (SyncHeader::Control, block_type::IDLE as u64),
            Block::Start(b) => (SyncHeader::Control, block_type::START as u64 | pack7(b)),
            Block::Data(b) => (SyncHeader::Data, u64::from_le_bytes(*b)),
            Block::Terminate { bytes, len } => (
                SyncHeader::Control,
                block_type::TERMINATE[*len as usize] as u64 | pack7(bytes),
            ),
            Block::MemStart(b) => (SyncHeader::Control, block_type::MEM_START as u64 | pack7(b)),
            Block::MemData(b) => (SyncHeader::Data, u64::from_le_bytes(*b)),
            Block::MemTerminate { bytes, len } => (
                SyncHeader::Control,
                block_type::MEM_TERMINATE[*len as usize] as u64 | pack7(bytes),
            ),
            Block::MemSingle { bytes, len } => {
                let mut seven = [0u8; 7];
                seven[0] = *len;
                seven[1..].copy_from_slice(bytes);
                (
                    SyncHeader::Control,
                    block_type::MEM_SINGLE as u64 | pack7(&seven),
                )
            }
            Block::Notify { dest, msg_id, size } => {
                let mut seven = [0u8; 7];
                seven[0..2].copy_from_slice(&dest.to_le_bytes());
                seven[2] = *msg_id;
                seven[3..5].copy_from_slice(&size.to_le_bytes());
                (
                    SyncHeader::Control,
                    block_type::NOTIFY as u64 | pack7(&seven),
                )
            }
            Block::Grant {
                dest,
                msg_id,
                chunk,
            } => {
                let mut seven = [0u8; 7];
                seven[0..2].copy_from_slice(&dest.to_le_bytes());
                seven[2] = *msg_id;
                seven[3..5].copy_from_slice(&chunk.to_le_bytes());
                (
                    SyncHeader::Control,
                    block_type::GRANT as u64 | pack7(&seven),
                )
            }
        }
    }

    /// Decodes from wire form.
    ///
    /// A data-sync block decodes as `/D/`; whether it is really `/MD/` is
    /// contextual (it sits between `/MS/` and `/MT/`), which is exactly how
    /// the paper distinguishes them — use [`Block::into_mem_data`] when the
    /// receive state machine knows it is inside a memory message.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnknownBlockType`] for unassigned control
    /// code points and [`WireError::BadLength`] for malformed EDM blocks.
    pub fn from_wire(sync: SyncHeader, payload: u64) -> Result<Block, WireError> {
        fn unpack7(payload: u64) -> [u8; 7] {
            let mut b = [0u8; 7];
            for (i, slot) in b.iter_mut().enumerate() {
                *slot = (payload >> (8 * (i + 1))) as u8;
            }
            b
        }
        match sync {
            SyncHeader::Data => Ok(Block::Data(payload.to_le_bytes())),
            SyncHeader::Control => {
                let bt = payload as u8;
                let seven = unpack7(payload);
                if bt == block_type::IDLE {
                    return Ok(Block::Idle);
                }
                if bt == block_type::START {
                    return Ok(Block::Start(seven));
                }
                if let Some(len) = block_type::TERMINATE.iter().position(|&t| t == bt) {
                    return Ok(Block::Terminate {
                        bytes: seven,
                        len: len as u8,
                    });
                }
                if bt == block_type::MEM_START {
                    return Ok(Block::MemStart(seven));
                }
                if let Some(len) = block_type::MEM_TERMINATE.iter().position(|&t| t == bt) {
                    return Ok(Block::MemTerminate {
                        bytes: seven,
                        len: len as u8,
                    });
                }
                if bt == block_type::MEM_SINGLE {
                    let len = seven[0];
                    if len > 6 {
                        return Err(WireError::BadLength(len));
                    }
                    let mut bytes = [0u8; 6];
                    bytes.copy_from_slice(&seven[1..]);
                    return Ok(Block::MemSingle { bytes, len });
                }
                if bt == block_type::NOTIFY {
                    return Ok(Block::Notify {
                        dest: u16::from_le_bytes([seven[0], seven[1]]),
                        msg_id: seven[2],
                        size: u16::from_le_bytes([seven[3], seven[4]]),
                    });
                }
                if bt == block_type::GRANT {
                    return Ok(Block::Grant {
                        dest: u16::from_le_bytes([seven[0], seven[1]]),
                        msg_id: seven[2],
                        chunk: u16::from_le_bytes([seven[3], seven[4]]),
                    });
                }
                Err(WireError::UnknownBlockType(bt))
            }
        }
    }

    /// Reinterprets a `/D/` block as `/MD/` (the receive state machine calls
    /// this while inside an `/MS/`…`/MT/` bracket). Non-data blocks are
    /// returned unchanged.
    pub fn into_mem_data(self) -> Block {
        match self {
            Block::Data(b) => Block::MemData(b),
            other => other,
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Block::Idle => write!(f, "/E/"),
            Block::Start(_) => write!(f, "/S/"),
            Block::Data(_) => write!(f, "/D/"),
            Block::Terminate { len, .. } => write!(f, "/T{len}/"),
            Block::MemStart(_) => write!(f, "/MS/"),
            Block::MemData(_) => write!(f, "/MD/"),
            Block::MemTerminate { len, .. } => write!(f, "/MT{len}/"),
            Block::MemSingle { len, .. } => write!(f, "/MST({len})/"),
            Block::Notify { .. } => write!(f, "/N/"),
            Block::Grant { .. } => write!(f, "/G/"),
        }
    }
}

/// Errors decoding a 66-bit block from the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Control block type value not assigned by 802.3 or EDM.
    UnknownBlockType(u8),
    /// An EDM block encoded an impossible length field.
    BadLength(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownBlockType(bt) => write!(f, "unknown block type 0x{bt:02X}"),
            WireError::BadLength(l) => write!(f, "invalid EDM block length {l}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(b: Block) {
        let (sync, payload) = b.to_wire();
        let mut back = Block::from_wire(sync, payload).expect("decode");
        // /MD/ decodes as /D/ (contextual); normalize for comparison.
        if matches!(b, Block::MemData(_)) {
            back = back.into_mem_data();
        }
        assert_eq!(back, b);
    }

    #[test]
    fn wire_roundtrip_all_variants() {
        roundtrip(Block::Idle);
        roundtrip(Block::Start([1, 2, 3, 4, 5, 6, 7]));
        roundtrip(Block::Data([9; 8]));
        for len in 0..=7u8 {
            roundtrip(Block::Terminate {
                bytes: [0xAA; 7],
                len,
            });
            roundtrip(Block::MemTerminate {
                bytes: [0xBB; 7],
                len,
            });
        }
        roundtrip(Block::MemStart([7; 7]));
        roundtrip(Block::MemData([0xCD; 8]));
        for len in 0..=6u8 {
            roundtrip(Block::MemSingle {
                bytes: [0xEE; 6],
                len,
            });
        }
        roundtrip(Block::Notify {
            dest: 511,
            msg_id: 255,
            size: 65_535,
        });
        roundtrip(Block::Grant {
            dest: 3,
            msg_id: 17,
            chunk: 256,
        });
    }

    #[test]
    fn block_type_code_points_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        let mut add = |v: u8| assert!(seen.insert(v), "duplicate block type 0x{v:02X}");
        add(block_type::IDLE);
        add(block_type::START);
        for t in block_type::TERMINATE {
            add(t);
        }
        add(block_type::MEM_START);
        for t in block_type::MEM_TERMINATE {
            add(t);
        }
        add(block_type::MEM_SINGLE);
        add(block_type::NOTIFY);
        add(block_type::GRANT);
    }

    #[test]
    fn sync_headers() {
        assert_eq!(Block::Data([0; 8]).sync_header(), SyncHeader::Data);
        assert_eq!(Block::MemData([0; 8]).sync_header(), SyncHeader::Data);
        assert_eq!(Block::Idle.sync_header(), SyncHeader::Control);
        assert_eq!(
            Block::Notify {
                dest: 0,
                msg_id: 0,
                size: 0
            }
            .sync_header(),
            SyncHeader::Control
        );
    }

    #[test]
    fn memory_vs_frame_classification() {
        assert!(Block::MemStart([0; 7]).is_memory());
        assert!(Block::Grant {
            dest: 0,
            msg_id: 0,
            chunk: 0
        }
        .is_memory());
        assert!(!Block::Idle.is_memory());
        assert!(Block::Start([0; 7]).is_frame());
        assert!(!Block::Idle.is_frame());
        assert!(!Block::MemStart([0; 7]).is_frame());
    }

    #[test]
    fn data_lengths() {
        assert_eq!(Block::Idle.data_len(), 0);
        assert_eq!(Block::Start([0; 7]).data_len(), 7);
        assert_eq!(Block::Data([0; 8]).data_len(), 8);
        assert_eq!(
            Block::Terminate {
                bytes: [0; 7],
                len: 3
            }
            .data_len(),
            3
        );
        assert_eq!(
            Block::MemSingle {
                bytes: [0; 6],
                len: 6
            }
            .data_len(),
            6
        );
    }

    #[test]
    fn unknown_block_type_rejected() {
        // 0x42 is not an assigned code point.
        assert_eq!(
            Block::from_wire(SyncHeader::Control, 0x42),
            Err(WireError::UnknownBlockType(0x42))
        );
    }

    #[test]
    fn bad_mst_length_rejected() {
        // /MST/ with length 7 in the length byte is invalid (max 6).
        let payload = block_type::MEM_SINGLE as u64 | (7u64 << 8);
        assert_eq!(
            Block::from_wire(SyncHeader::Control, payload),
            Err(WireError::BadLength(7))
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Block::Idle), "/E/");
        assert_eq!(
            format!(
                "{}",
                Block::MemTerminate {
                    bytes: [0; 7],
                    len: 5
                }
            ),
            "/MT5/"
        );
        assert_eq!(
            format!(
                "{}",
                Block::Notify {
                    dest: 1,
                    msg_id: 2,
                    size: 3
                }
            ),
            "/N/"
        );
    }
}
