//! Intra-frame preemption (§3.2.3) — EDM's mechanism for keeping small
//! memory messages out from behind large Ethernet frames.
//!
//! **TX side** ([`PreemptMux`]): a per-link multiplexer holding two queues —
//! memory messages (as atomic block groups) and non-memory frame blocks.
//! Each PHY clock cycle it emits exactly one 66-bit block. Because memory
//! messages are bracketed `/MS/…/MT/` runs whose interior `/MD/` blocks are
//! contextually identified, a memory message is never itself interleaved;
//! but a *frame* can be suspended at any block boundary, a whole memory
//! message inserted, and the frame resumed — which is precisely the
//! intra-frame preemption the MAC layer cannot do.
//!
//! **RX side** ([`RxReorderBuffer`]): memory blocks are extracted and
//! delivered immediately (zero added latency); frame blocks are buffered
//! until their `/T/` arrives and then released contiguously, because the
//! standard PCS decoder and MAC expect a frame's blocks in consecutive
//! cycles. The buffering cost (one frame's transmission time, worst case)
//! is paid by non-memory traffic only, matching the paper.

use crate::block::Block;
use std::collections::VecDeque;

/// TX scheduling policy between memory and non-memory blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxPolicy {
    /// Alternate fairly between the two classes when both have traffic
    /// (the paper's default).
    #[default]
    Fair,
    /// Strictly prioritize memory blocks over non-memory blocks.
    MemoryFirst,
}

/// The per-link TX multiplexer.
#[derive(Debug)]
pub struct PreemptMux {
    policy: TxPolicy,
    /// Queue of memory messages, each an atomic run of blocks.
    mem: VecDeque<VecDeque<Block>>,
    /// Queue of non-memory (frame) blocks, already encoded.
    frame: VecDeque<Block>,
    /// Remaining blocks of a memory message currently being transmitted.
    in_flight_mem: VecDeque<Block>,
    /// For [`TxPolicy::Fair`]: whose turn it is when both classes compete.
    mem_turn: bool,
    /// Total idle blocks emitted (both queues empty) — IFG accounting.
    idle_blocks: u64,
    /// Total blocks emitted.
    total_blocks: u64,
}

impl PreemptMux {
    /// Creates a multiplexer with the given policy.
    pub fn new(policy: TxPolicy) -> Self {
        PreemptMux {
            policy,
            mem: VecDeque::new(),
            frame: VecDeque::new(),
            in_flight_mem: VecDeque::new(),
            mem_turn: true,
            idle_blocks: 0,
            total_blocks: 0,
        }
    }

    /// Enqueues a memory message (an atomic block run, e.g. from
    /// [`crate::mem_codec::encode_message`]).
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or contains a non-memory block.
    pub fn enqueue_memory(&mut self, blocks: Vec<Block>) {
        assert!(!blocks.is_empty(), "empty memory message");
        assert!(
            blocks.iter().all(|b| b.is_memory()),
            "non-memory block in memory message"
        );
        self.mem.push_back(blocks.into());
    }

    /// Enqueues the blocks of a non-memory Ethernet frame.
    pub fn enqueue_frame(&mut self, blocks: Vec<Block>) {
        self.frame.extend(blocks);
    }

    /// Pending memory blocks (including the in-flight message).
    pub fn pending_memory_blocks(&self) -> usize {
        self.in_flight_mem.len() + self.mem.iter().map(|m| m.len()).sum::<usize>()
    }

    /// Pending non-memory blocks.
    pub fn pending_frame_blocks(&self) -> usize {
        self.frame.len()
    }

    /// Idle blocks emitted so far.
    pub fn idle_blocks(&self) -> u64 {
        self.idle_blocks
    }

    /// Total blocks emitted so far.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Emits the block for this PHY clock cycle.
    ///
    /// Exactly one block leaves per cycle; `/E/` idles fill empty slots
    /// (the stream never stalls, as on a real link).
    pub fn tick(&mut self) -> Block {
        self.total_blocks += 1;
        // Rule 1: never split a memory message once started.
        if let Some(b) = self.in_flight_mem.pop_front() {
            return b;
        }
        let mem_ready = !self.mem.is_empty();
        let frame_ready = !self.frame.is_empty();
        let take_mem = match (mem_ready, frame_ready) {
            (false, false) => {
                self.idle_blocks += 1;
                return Block::Idle;
            }
            (true, false) => true,
            (false, true) => false,
            (true, true) => match self.policy {
                TxPolicy::MemoryFirst => true,
                TxPolicy::Fair => {
                    let turn = self.mem_turn;
                    self.mem_turn = !self.mem_turn;
                    turn
                }
            },
        };
        if take_mem {
            let mut msg = self.mem.pop_front().expect("mem_ready");
            let first = msg.pop_front().expect("non-empty message");
            self.in_flight_mem = msg;
            first
        } else {
            self.frame.pop_front().expect("frame_ready")
        }
    }

    /// Drains the mux, returning every remaining block in emission order
    /// (no idles).
    pub fn drain(&mut self) -> Vec<Block> {
        let mut out = Vec::new();
        while self.pending_memory_blocks() + self.pending_frame_blocks() > 0 {
            out.push(self.tick());
        }
        out
    }
}

impl Default for PreemptMux {
    fn default() -> Self {
        PreemptMux::new(TxPolicy::Fair)
    }
}

/// Output of one RX push: extracted memory blocks and any completed frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RxOutput {
    /// Memory blocks, delivered with zero buffering delay.
    pub mem: Vec<Block>,
    /// A completed non-memory frame (contiguous `/S/ /D/* /T/` run),
    /// released only once its `/T/` arrived.
    pub frame: Option<Vec<Block>>,
}

/// Errors from [`RxReorderBuffer::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxError {
    /// A frame block arrived inside a memory-message bracket; the TX mux
    /// never produces this, so it indicates corruption.
    FrameBlockInMemBracket,
    /// `/MT/` or `/MD/` without a preceding `/MS/`.
    OrphanMemoryBlock,
    /// A second `/S/` arrived before the previous frame's `/T/`.
    NestedFrame,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::FrameBlockInMemBracket => write!(f, "frame block inside /MS/../MT/ bracket"),
            RxError::OrphanMemoryBlock => write!(f, "memory continuation without /MS/"),
            RxError::NestedFrame => write!(f, "/S/ while a frame is already open"),
        }
    }
}

impl std::error::Error for RxError {}

/// The RX-side reorder buffer of §3.2.3.
#[derive(Debug, Default)]
pub struct RxReorderBuffer {
    /// Open memory-message bracket: blocks collected since `/MS/`.
    in_mem_bracket: bool,
    /// Buffered blocks of the (possibly preempted) open frame.
    frame_buf: Vec<Block>,
    frame_open: bool,
    /// High-water mark of the frame buffer, to check the bound the paper
    /// states (bounded by the maximum frame size).
    frame_buf_high_water: usize,
}

impl RxReorderBuffer {
    /// Creates an empty reorder buffer.
    pub fn new() -> Self {
        RxReorderBuffer::default()
    }

    /// Highest frame-buffer occupancy seen, in blocks.
    pub fn frame_buf_high_water(&self) -> usize {
        self.frame_buf_high_water
    }

    /// Whether a memory bracket is currently open.
    pub fn in_memory_bracket(&self) -> bool {
        self.in_mem_bracket
    }

    /// Processes one received block.
    ///
    /// # Errors
    ///
    /// Returns an [`RxError`] for block sequences the TX mux cannot
    /// legally produce (indicating corruption).
    pub fn push(&mut self, block: Block) -> Result<RxOutput, RxError> {
        let mut out = RxOutput::default();
        if self.in_mem_bracket {
            match block {
                Block::Data(d) | Block::MemData(d) => out.mem.push(Block::MemData(d)),
                Block::MemTerminate { .. } => {
                    out.mem.push(block);
                    self.in_mem_bracket = false;
                }
                Block::Idle => {} // permissible gap inside circuit, dropped
                Block::Start(_) | Block::Terminate { .. } => {
                    return Err(RxError::FrameBlockInMemBracket)
                }
                Block::MemStart(_)
                | Block::MemSingle { .. }
                | Block::Notify { .. }
                | Block::Grant { .. } => return Err(RxError::FrameBlockInMemBracket),
            }
            return Ok(out);
        }
        match block {
            Block::Idle => {}
            Block::MemStart(_) => {
                self.in_mem_bracket = true;
                out.mem.push(block);
            }
            Block::MemSingle { .. } | Block::Notify { .. } | Block::Grant { .. } => {
                out.mem.push(block);
            }
            Block::MemData(_) | Block::MemTerminate { .. } => {
                return Err(RxError::OrphanMemoryBlock)
            }
            Block::Start(_) => {
                if self.frame_open {
                    return Err(RxError::NestedFrame);
                }
                self.frame_open = true;
                self.frame_buf.push(block);
                self.frame_buf_high_water = self.frame_buf_high_water.max(self.frame_buf.len());
            }
            Block::Data(_) => {
                if !self.frame_open {
                    // A /D/ with no open frame and no open bracket: the TX
                    // mux cannot produce this.
                    return Err(RxError::OrphanMemoryBlock);
                }
                self.frame_buf.push(block);
                self.frame_buf_high_water = self.frame_buf_high_water.max(self.frame_buf.len());
            }
            Block::Terminate { .. } => {
                if !self.frame_open {
                    return Err(RxError::OrphanMemoryBlock);
                }
                self.frame_buf.push(block);
                self.frame_buf_high_water = self.frame_buf_high_water.max(self.frame_buf.len());
                self.frame_open = false;
                out.frame = Some(std::mem::take(&mut self.frame_buf));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use crate::mem_codec::{encode_message, MemMessage};

    fn mem_blocks(len: usize) -> Vec<Block> {
        encode_message(&MemMessage::new(1, 0, vec![0xAB; len]))
    }

    #[test]
    fn memory_preempts_mid_frame() {
        let mut mux = PreemptMux::new(TxPolicy::Fair);
        mux.enqueue_frame(encode_frame(&[0u8; 1500]).unwrap());
        // Let the frame get going.
        let first = mux.tick();
        assert!(matches!(first, Block::Start(_)));
        let _ = mux.tick();
        // A memory message arrives mid-frame.
        mux.enqueue_memory(mem_blocks(8));
        // Within the next few slots the memory message must appear —
        // long before the 1500 B frame would have finished (188 blocks).
        let mut saw_ms_at = None;
        for i in 0..8 {
            if matches!(mux.tick(), Block::MemStart(_)) {
                saw_ms_at = Some(i);
                break;
            }
        }
        let pos = saw_ms_at.expect("memory message never started");
        assert!(pos <= 2, "memory had to wait {pos} slots under Fair");
    }

    #[test]
    fn memory_message_is_atomic() {
        let mut mux = PreemptMux::new(TxPolicy::Fair);
        mux.enqueue_frame(encode_frame(&[0u8; 200]).unwrap());
        mux.enqueue_memory(mem_blocks(64)); // 10 blocks
        let stream = mux.drain();
        // Find the /MS/.. /MT/ bracket and assert no frame blocks inside.
        let ms = stream
            .iter()
            .position(|b| matches!(b, Block::MemStart(_)))
            .unwrap();
        let mt = stream
            .iter()
            .position(|b| matches!(b, Block::MemTerminate { .. }))
            .unwrap();
        assert!(mt > ms);
        assert_eq!(mt - ms, 9, "64 B message spans exactly 10 blocks");
        for b in &stream[ms..=mt] {
            assert!(b.is_memory(), "frame block inside memory bracket: {b}");
        }
    }

    #[test]
    fn fair_policy_alternates_between_classes() {
        let mut mux = PreemptMux::new(TxPolicy::Fair);
        mux.enqueue_frame(encode_frame(&[0u8; 512]).unwrap());
        for _ in 0..4 {
            mux.enqueue_memory(mem_blocks(1)); // 2 blocks each
        }
        let stream = mux.drain();
        // Between two consecutive memory messages there must be at least one
        // frame block (fairness), and the frame must finish eventually.
        let frame_blocks = stream.iter().filter(|b| b.is_frame()).count();
        assert_eq!(frame_blocks, crate::frame::blocks_for_frame(512));
        assert!(stream.iter().any(|b| b.is_memory()));
    }

    #[test]
    fn memory_first_policy_drains_memory() {
        let mut mux = PreemptMux::new(TxPolicy::MemoryFirst);
        mux.enqueue_frame(encode_frame(&[0u8; 64]).unwrap());
        mux.enqueue_memory(mem_blocks(8));
        mux.enqueue_memory(mem_blocks(8));
        let stream = mux.drain();
        let last_mem = stream.iter().rposition(|b| b.is_memory()).unwrap();
        let first_frame = stream.iter().position(|b| b.is_frame()).unwrap();
        assert!(
            last_mem < first_frame,
            "memory blocks must all precede frame blocks"
        );
    }

    #[test]
    fn idle_when_empty() {
        let mut mux = PreemptMux::default();
        assert_eq!(mux.tick(), Block::Idle);
        assert_eq!(mux.idle_blocks(), 1);
        assert_eq!(mux.total_blocks(), 1);
    }

    #[test]
    fn rx_reassembles_preempted_frame() {
        let mut mux = PreemptMux::new(TxPolicy::Fair);
        let frame: Vec<u8> = (0..200).map(|i| i as u8).collect();
        mux.enqueue_frame(encode_frame(&frame).unwrap());
        mux.enqueue_memory(mem_blocks(16));
        mux.enqueue_memory(mem_blocks(8));
        let stream = mux.drain();

        let mut rx = RxReorderBuffer::new();
        let mut mem_out = Vec::new();
        let mut frames = Vec::new();
        for b in stream {
            let out = rx.push(b).unwrap();
            mem_out.extend(out.mem);
            if let Some(f) = out.frame {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 1);
        let decoded = crate::frame::decode_frame(&frames[0]).unwrap();
        assert_eq!(decoded, frame, "frame must survive preemption intact");
        // Both memory messages extracted: 2 brackets.
        let starts = mem_out
            .iter()
            .filter(|b| matches!(b, Block::MemStart(_)))
            .count();
        assert_eq!(starts, 2);
    }

    #[test]
    fn rx_delivers_memory_with_zero_buffering() {
        let mut rx = RxReorderBuffer::new();
        let blocks = mem_blocks(8);
        for b in blocks {
            let out = rx.push(b.clone()).unwrap();
            // Every memory block is emitted the same cycle it arrives.
            assert_eq!(out.mem.len(), 1);
        }
    }

    #[test]
    fn rx_frame_buffer_bounded_by_frame_size() {
        let mut mux = PreemptMux::new(TxPolicy::Fair);
        let frame = vec![0u8; 1518];
        mux.enqueue_frame(encode_frame(&frame).unwrap());
        for _ in 0..20 {
            mux.enqueue_memory(mem_blocks(32));
        }
        let mut rx = RxReorderBuffer::new();
        for b in mux.drain() {
            rx.push(b).unwrap();
        }
        assert!(rx.frame_buf_high_water() <= crate::frame::blocks_for_frame(1518));
    }

    #[test]
    fn rx_rejects_orphan_memory_continuation() {
        let mut rx = RxReorderBuffer::new();
        assert_eq!(
            rx.push(Block::MemTerminate {
                bytes: [0; 7],
                len: 0
            })
            .unwrap_err(),
            RxError::OrphanMemoryBlock
        );
    }

    #[test]
    fn rx_rejects_frame_block_inside_bracket() {
        let mut rx = RxReorderBuffer::new();
        rx.push(Block::MemStart([0; 7])).unwrap();
        assert_eq!(
            rx.push(Block::Start([0; 7])).unwrap_err(),
            RxError::FrameBlockInMemBracket
        );
    }

    #[test]
    fn rx_rejects_nested_frame() {
        let mut rx = RxReorderBuffer::new();
        rx.push(Block::Start([0; 7])).unwrap();
        assert_eq!(
            rx.push(Block::Start([0; 7])).unwrap_err(),
            RxError::NestedFrame
        );
    }

    #[test]
    fn notify_and_grant_pass_straight_through() {
        let mut rx = RxReorderBuffer::new();
        let n = Block::Notify {
            dest: 2,
            msg_id: 1,
            size: 64,
        };
        let g = Block::Grant {
            dest: 2,
            msg_id: 1,
            chunk: 64,
        };
        assert_eq!(rx.push(n.clone()).unwrap().mem, vec![n]);
        assert_eq!(rx.push(g.clone()).unwrap().mem, vec![g]);
    }
}
