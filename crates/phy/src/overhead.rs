//! Exact wire-cost accounting: MAC-layer vs PHY-layer transport of memory
//! messages.
//!
//! This module quantifies limitations 1–2 of §2.4 (minimum frame size and
//! inter-frame gap) and EDM's corresponding gains, and is the computational
//! core of the Figure 6 reproduction (requests/second under YCSB mixes).

use crate::{BLOCK_WIRE_BITS, DATA_BLOCK_BYTES};
use edm_sim::Bandwidth;

/// Ethernet preamble + start-frame delimiter, bytes.
pub const PREAMBLE_BYTES: u64 = 8;
/// Ethernet MAC header (dst, src, EtherType), bytes.
pub const MAC_HEADER_BYTES: u64 = 14;
/// Frame check sequence, bytes.
pub const FCS_BYTES: u64 = 4;
/// Minimum MAC frame (header + payload + FCS), bytes.
pub const MIN_FRAME_BYTES: u64 = 64;
/// Inter-frame gap, bytes.
pub const IFG_BYTES: u64 = 12;

/// Per-message protocol header overhead above the MAC layer, in bytes.
///
/// These are the encapsulations the testbed baselines carry inside each
/// Ethernet frame (§4.2 baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encapsulation {
    /// Raw Ethernet: no L3+ headers.
    RawEthernet,
    /// RoCEv2: IP (20) + UDP (8) + InfiniBand BTH (12) + ICRC (4).
    RoCEv2,
    /// Hardware-offloaded TCP/IP: IP (20) + TCP (20).
    TcpIp,
}

impl Encapsulation {
    /// Header bytes this encapsulation adds inside the MAC payload.
    pub fn header_bytes(self) -> u64 {
        match self {
            Encapsulation::RawEthernet => 0,
            Encapsulation::RoCEv2 => 20 + 8 + 12 + 4,
            Encapsulation::TcpIp => 20 + 20,
        }
    }
}

/// Bytes on the wire to carry `payload` bytes in one MAC frame with the
/// given encapsulation — including preamble, MAC header, FCS, minimum-frame
/// padding, and IFG.
///
/// ```
/// use edm_phy::overhead::{mac_wire_bytes, Encapsulation};
/// // An 8 B read request over raw Ethernet still costs a full minimum
/// // frame plus preamble and IFG: 8 + 64 + 12 = 84 bytes for 8 useful ones.
/// assert_eq!(mac_wire_bytes(8, Encapsulation::RawEthernet), 84);
/// ```
pub fn mac_wire_bytes(payload: u64, encap: Encapsulation) -> u64 {
    let l2_payload = payload + encap.header_bytes();
    let frame = (MAC_HEADER_BYTES + l2_payload + FCS_BYTES).max(MIN_FRAME_BYTES);
    PREAMBLE_BYTES + frame + IFG_BYTES
}

/// Wire bits for an EDM memory message of `payload` bytes: `/MS/` header
/// block + data blocks + `/MT/`, at 66 bits per block.
///
/// EDM additionally repurposes IFG slots, so no inter-message gap is
/// charged.
pub fn edm_wire_bits(payload: u64) -> u64 {
    let blocks = 2 + payload / DATA_BLOCK_BYTES as u64;
    blocks * BLOCK_WIRE_BITS
}

/// Wire bits for the MAC path (wire bytes × 8, plus the 64b/66b line-code
/// expansion so both paths are measured at the same point on the wire).
pub fn mac_wire_bits(payload: u64, encap: Encapsulation) -> u64 {
    mac_wire_bytes(payload, encap) * 8 * 66 / 64
}

/// Goodput fraction (useful payload bits / wire bits) for the MAC path.
pub fn mac_goodput(payload: u64, encap: Encapsulation) -> f64 {
    payload as f64 * 8.0 / mac_wire_bits(payload, encap) as f64
}

/// Goodput fraction for the EDM PHY path.
pub fn edm_goodput(payload: u64) -> f64 {
    payload as f64 * 8.0 / edm_wire_bits(payload) as f64
}

/// Messages per second a link can carry for a repeating request pattern.
///
/// `wire_bits_per_msg` is the per-message wire cost (e.g. from
/// [`edm_wire_bits`] or [`mac_wire_bits`] summed over the request mix).
pub fn messages_per_second(link: Bandwidth, wire_bits_per_msg: f64) -> f64 {
    assert!(wire_bits_per_msg > 0.0);
    link.as_bps() as f64 / wire_bits_per_msg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_frame_waste_for_8b_rreq() {
        // §2.4 limitation 1: "an 88% bandwidth wastage while sending 8 B
        // RREQ messages using minimum-sized Ethernet frames" — i.e. only
        // 8/64+ of the frame is useful. Counting preamble+IFG it is worse.
        let wire = mac_wire_bytes(8, Encapsulation::RawEthernet);
        let waste = 1.0 - 8.0 / wire as f64;
        assert!(waste > 0.88, "waste {waste} should exceed 88%");
    }

    #[test]
    fn ifg_overhead_for_64b_frames() {
        // §2.4 limitation 2: 16% overhead for 64 B frames from the 12 B IFG
        // (12/76 of header+IFG ≈ 16% of the frame+IFG budget).
        let with_ifg = mac_wire_bytes(42, Encapsulation::RawEthernet); // 64B frame
        let frame_only = with_ifg - IFG_BYTES - PREAMBLE_BYTES;
        assert_eq!(frame_only, 64);
        let overhead = IFG_BYTES as f64 / (frame_only) as f64;
        assert!((overhead - 0.1875).abs() < 0.001); // 12/64
    }

    #[test]
    fn edm_beats_mac_for_small_messages() {
        for payload in [1u64, 8, 16, 24, 32, 64] {
            assert!(
                edm_wire_bits(payload) < mac_wire_bits(payload, Encapsulation::RawEthernet),
                "EDM must be cheaper at {payload} B"
            );
        }
    }

    #[test]
    fn goodput_gap_narrows_for_large_messages() {
        let small_gap = edm_goodput(8) / mac_goodput(8, Encapsulation::RoCEv2);
        let large_gap = edm_goodput(4096) / mac_goodput(4096, Encapsulation::RoCEv2);
        assert!(small_gap > 3.0, "small-message gap {small_gap} too small");
        assert!(large_gap < 1.3, "large-message gap {large_gap} too big");
    }

    #[test]
    fn rocev2_headers() {
        assert_eq!(Encapsulation::RoCEv2.header_bytes(), 44);
        assert_eq!(Encapsulation::TcpIp.header_bytes(), 40);
        assert_eq!(Encapsulation::RawEthernet.header_bytes(), 0);
    }

    #[test]
    fn messages_per_second_sane() {
        let link = Bandwidth::from_gbps(25);
        // 8 B RREQ as one EDM message: 3 blocks * 66 bits = 198 bits.
        let mps = messages_per_second(link, edm_wire_bits(8) as f64);
        assert!(mps > 100e6, "25G link should carry >100M small msgs/s");
    }
}
