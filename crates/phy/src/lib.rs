//! `edm-phy` — an Ethernet Physical Coding Sublayer (PCS) substrate with the
//! EDM extensions from §3.2 of the paper.
//!
//! The 10/25/40/100+ GbE PCS transports data as **66-bit blocks**: a 2-bit
//! sync header plus 64 payload bits. EDM's key insight is that operating at
//! this granularity (instead of the MAC's 64 B minimum frame) removes the
//! bandwidth and latency overheads that make small remote-memory messages
//! expensive on Ethernet. This crate models, at block granularity:
//!
//! * [`block`] — the 66-bit block taxonomy: standard `/S/ /D/ /T/ /E/`
//!   blocks plus EDM's `/MS/ /MD/ /MT/ /MST/ /N/ /G/` block types;
//! * [`frame`] — MAC-frame ⇄ block encoding (the PCS encoder/decoder),
//!   including the 9-blocks-per-minimum-frame structure and the inter-frame
//!   gap (IFG);
//! * [`mem_codec`] — EDM memory-message ⇄ block encoding, which is what
//!   lets an 8 B read request travel as a *single* PHY block;
//! * [`scramble`] — the self-synchronizing x^58 + x^39 + 1 scrambler pair;
//! * [`pcs`] — the composed Figure-3 pipeline: encoder → EDM TX →
//!   scrambler on egress, block sync → descrambler → EDM RX → decoder on
//!   ingress, with a bit-exact loopback;
//! * [`preempt`] — EDM's intra-frame preemption: a TX multiplexer that
//!   interleaves memory blocks into non-memory frames at 66-bit granularity,
//!   and the RX reorder buffer that re-contiguizes preempted frames before
//!   the standard decoder sees them (§3.2.3);
//! * [`overhead`] — exact wire-cost accounting for MAC-layer vs PHY-layer
//!   transport of memory messages (drives the Figure 6 reproduction).
//!
//! # Example: a small memory message needs only two blocks
//!
//! ```
//! use edm_phy::mem_codec::{encode_message, decode_message, MemMessage};
//!
//! let msg = MemMessage::new(0, 1, vec![0xAB; 8]);
//! let blocks = encode_message(&msg);
//! assert!(blocks.len() <= 3);
//! let back = decode_message(&blocks).unwrap();
//! assert_eq!(back.payload(), msg.payload());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod frame;
pub mod mem_codec;
pub mod overhead;
pub mod pcs;
pub mod preempt;
pub mod scramble;

pub use block::{Block, SyncHeader};
pub use frame::{decode_frame, encode_frame, FrameError};
pub use pcs::{PcsRx, PcsTx, WireWord};
pub use preempt::{PreemptMux, RxReorderBuffer, TxPolicy};
pub use scramble::{Descrambler, Scrambler};

/// The PHY block clock period for 25 GbE: one 64-bit payload every 2.56 ns.
///
/// All per-stage latencies in the paper (Table 1, Figure 5) are multiples of
/// this cycle.
pub const BLOCK_CLOCK: edm_sim::Duration = edm_sim::Duration::from_ps(2_560);

/// Bits on the wire per PHY block (2 sync + 64 payload).
pub const BLOCK_WIRE_BITS: u64 = 66;

/// Payload bits per PHY block.
pub const BLOCK_PAYLOAD_BITS: u64 = 64;

/// Data bytes carried by a full `/D/` (or `/MD/`) data block.
pub const DATA_BLOCK_BYTES: usize = 8;

/// Data bytes carried by a control block (56-bit payload after the 8-bit
/// block-type field).
pub const CTRL_BLOCK_BYTES: usize = 7;
