//! EDM memory-message ⇄ PHY-block encoding (§3.2.1).
//!
//! A memory message travels as `/MS/` (7-byte header: destination port,
//! message id, length) followed by `/MD/` data blocks and a final `/MT_r/`
//! carrying the 0–7 remaining bytes. Messages of up to 6 bytes whose header
//! context is already established on a point-to-point hop can instead use a
//! single `/MST/` block — the paper's "a memory message in EDM can be as
//! small as a single PHY block".
//!
//! Unlike an Ethernet frame (minimum 9 blocks), an 8 B read request is
//! 2 blocks and a 64 B read response is 10 — this granularity difference is
//! the source of EDM's bandwidth advantage for small messages (Figure 6).

use crate::block::Block;
use core::fmt;

/// A memory message at the PHY boundary: routing header plus raw payload.
///
/// The payload is opaque here; `edm-core` serializes RREQ/WREQ/RMWREQ/RRES
/// semantics into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemMessage {
    dest: u16,
    msg_id: u8,
    payload: Vec<u8>,
}

impl MemMessage {
    /// Creates a message to switch port `dest` with the given id and payload.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u16::MAX` bytes (the `/MS/` header's
    /// 16-bit length field, §3.1.4).
    pub fn new(dest: u16, msg_id: u8, payload: Vec<u8>) -> Self {
        assert!(
            payload.len() <= u16::MAX as usize,
            "memory message payload exceeds 16-bit length field"
        );
        MemMessage {
            dest,
            msg_id,
            payload,
        }
    }

    /// Destination switch port.
    pub fn dest(&self) -> u16 {
        self.dest
    }

    /// Message id (distinguishes messages of one source–destination pair).
    pub fn msg_id(&self) -> u8 {
        self.msg_id
    }

    /// The message payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes the message, returning its payload.
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }
}

/// Errors from [`decode_message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemCodecError {
    /// Block run did not start with `/MS/` or `/MST/`.
    MissingStart,
    /// Block run ended without `/MT/`.
    Unterminated,
    /// A non-memory block appeared inside the message bracket.
    ForeignBlock,
    /// Header length field disagrees with the actual payload length.
    LengthMismatch {
        /// Length claimed by the `/MS/` header.
        header: usize,
        /// Bytes actually carried by the blocks.
        actual: usize,
    },
}

impl fmt::Display for MemCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemCodecError::MissingStart => {
                write!(f, "memory message must start with /MS/ or /MST/")
            }
            MemCodecError::Unterminated => write!(f, "memory message missing /MT/ terminator"),
            MemCodecError::ForeignBlock => write!(f, "non-memory block inside memory message"),
            MemCodecError::LengthMismatch { header, actual } => write!(
                f,
                "header claims {header} payload bytes but blocks carry {actual}"
            ),
        }
    }
}

impl std::error::Error for MemCodecError {}

fn header_bytes(msg: &MemMessage) -> [u8; 7] {
    let mut h = [0u8; 7];
    h[0..2].copy_from_slice(&msg.dest.to_le_bytes());
    h[2] = msg.msg_id;
    h[3..5].copy_from_slice(&(msg.payload.len() as u16).to_le_bytes());
    h
}

/// Encodes a memory message as `/MS/ [/MD/…] /MT_r/`.
///
/// ```
/// use edm_phy::mem_codec::{encode_message, MemMessage};
/// // A 64 B read response: /MS/ + 8 x /MD/ + /MT0/ = 10 blocks.
/// let blocks = encode_message(&MemMessage::new(1, 0, vec![0; 64]));
/// assert_eq!(blocks.len(), 10);
/// // An 8 B read request: /MS/ + /MD/ + /MT0/ = 3 blocks.
/// let blocks = encode_message(&MemMessage::new(1, 0, vec![0; 8]));
/// assert_eq!(blocks.len(), 3);
/// ```
pub fn encode_message(msg: &MemMessage) -> Vec<Block> {
    let mut blocks = Vec::with_capacity(2 + msg.payload.len() / 8);
    blocks.push(Block::MemStart(header_bytes(msg)));
    let mut chunks = msg.payload.chunks_exact(8);
    for c in &mut chunks {
        let mut d = [0u8; 8];
        d.copy_from_slice(c);
        blocks.push(Block::MemData(d));
    }
    let rem = chunks.remainder();
    let mut tail = [0u8; 7];
    tail[..rem.len()].copy_from_slice(rem);
    blocks.push(Block::MemTerminate {
        bytes: tail,
        len: rem.len() as u8,
    });
    blocks
}

/// Encodes a payload of at most 6 bytes as a single `/MST/` block.
///
/// # Errors
///
/// Returns the payload back if it exceeds 6 bytes.
pub fn encode_single(payload: &[u8]) -> Result<Block, usize> {
    if payload.len() > 6 {
        return Err(payload.len());
    }
    let mut bytes = [0u8; 6];
    bytes[..payload.len()].copy_from_slice(payload);
    Ok(Block::MemSingle {
        bytes,
        len: payload.len() as u8,
    })
}

/// Decodes a block run produced by [`encode_message`] (or a lone `/MST/`).
///
/// Accepts `/D/` blocks in place of `/MD/` (they are indistinguishable on
/// the wire; context is the bracket).
///
/// # Errors
///
/// See [`MemCodecError`] for the failure cases.
pub fn decode_message(blocks: &[Block]) -> Result<MemMessage, MemCodecError> {
    let mut it = blocks.iter();
    let header = match it.next() {
        Some(Block::MemStart(h)) => *h,
        Some(Block::MemSingle { bytes, len }) => {
            return Ok(MemMessage::new(0, 0, bytes[..*len as usize].to_vec()));
        }
        _ => return Err(MemCodecError::MissingStart),
    };
    let dest = u16::from_le_bytes([header[0], header[1]]);
    let msg_id = header[2];
    let claimed = u16::from_le_bytes([header[3], header[4]]) as usize;
    let mut payload = Vec::with_capacity(claimed);
    loop {
        match it.next() {
            Some(Block::MemData(d)) | Some(Block::Data(d)) => payload.extend_from_slice(d),
            Some(Block::MemTerminate { bytes, len }) => {
                payload.extend_from_slice(&bytes[..*len as usize]);
                break;
            }
            Some(_) => return Err(MemCodecError::ForeignBlock),
            None => return Err(MemCodecError::Unterminated),
        }
    }
    if payload.len() != claimed {
        return Err(MemCodecError::LengthMismatch {
            header: claimed,
            actual: payload.len(),
        });
    }
    Ok(MemMessage {
        dest,
        msg_id,
        payload,
    })
}

/// Number of PHY blocks a memory message of `payload_len` bytes occupies.
pub fn blocks_for_message(payload_len: usize) -> usize {
    // /MS/ + full /MD/ blocks + /MT/ with the remainder.
    2 + payload_len / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_sizes() {
        for len in [0usize, 1, 7, 8, 9, 24, 63, 64, 100, 256, 1024, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 37 % 253) as u8).collect();
            let msg = MemMessage::new(211, 42, payload.clone());
            let blocks = encode_message(&msg);
            assert_eq!(blocks.len(), blocks_for_message(len));
            let back = decode_message(&blocks).unwrap();
            assert_eq!(back, msg, "roundtrip failed for len {len}");
        }
    }

    #[test]
    fn rreq_is_three_blocks_and_frame_is_nine() {
        // The bandwidth story of §2.4: an 8 B RREQ costs 3 blocks in EDM
        // versus a 64 B minimum frame (9 blocks + IFG) at the MAC layer.
        assert_eq!(blocks_for_message(8), 3);
        assert!(blocks_for_message(8) < crate::frame::blocks_for_frame(64));
    }

    #[test]
    fn single_block_message() {
        let block = encode_single(&[1, 2, 3]).unwrap();
        let msg = decode_message(std::slice::from_ref(&block)).unwrap();
        assert_eq!(msg.payload(), &[1, 2, 3]);
        assert_eq!(encode_single(&[0; 7]).unwrap_err(), 7);
    }

    #[test]
    fn header_fields_preserved() {
        let msg = MemMessage::new(511, 255, vec![9; 17]);
        let back = decode_message(&encode_message(&msg)).unwrap();
        assert_eq!(back.dest(), 511);
        assert_eq!(back.msg_id(), 255);
    }

    #[test]
    fn decode_accepts_plain_data_blocks() {
        // On the wire /MD/ and /D/ are identical; the decoder must accept
        // either representation inside the bracket.
        let msg = MemMessage::new(4, 5, vec![0xEE; 16]);
        let mut blocks = encode_message(&msg);
        for b in blocks.iter_mut() {
            if let Block::MemData(d) = b {
                *b = Block::Data(*d);
            }
        }
        assert_eq!(decode_message(&blocks).unwrap(), msg);
    }

    #[test]
    fn missing_start_rejected() {
        assert_eq!(
            decode_message(&[Block::Idle]).unwrap_err(),
            MemCodecError::MissingStart
        );
        assert_eq!(
            decode_message(&[]).unwrap_err(),
            MemCodecError::MissingStart
        );
    }

    #[test]
    fn unterminated_rejected() {
        let mut blocks = encode_message(&MemMessage::new(0, 0, vec![1; 8]));
        blocks.pop();
        assert_eq!(
            decode_message(&blocks).unwrap_err(),
            MemCodecError::Unterminated
        );
    }

    #[test]
    fn foreign_block_rejected() {
        let mut blocks = encode_message(&MemMessage::new(0, 0, vec![1; 8]));
        blocks.insert(1, Block::Start([0; 7]));
        assert_eq!(
            decode_message(&blocks).unwrap_err(),
            MemCodecError::ForeignBlock
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let msg = MemMessage::new(0, 0, vec![1; 8]);
        let mut blocks = encode_message(&msg);
        blocks.insert(2, Block::MemData([0; 8])); // extra data block
        assert_eq!(
            decode_message(&blocks).unwrap_err(),
            MemCodecError::LengthMismatch {
                header: 8,
                actual: 16
            }
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 16-bit length field")]
    fn oversized_payload_panics() {
        let _ = MemMessage::new(0, 0, vec![0; 70_000]);
    }
}
