//! The self-synchronizing scrambler pair of 10/25/100 GbE
//! (polynomial x^58 + x^39 + 1, IEEE 802.3 clause 49.2.6).
//!
//! Only the 64 payload bits of each block are scrambled; the 2-bit sync
//! header passes through in the clear (that is what lets the receiver find
//! block boundaries). The scrambler is *self-synchronizing*: the
//! descrambler recovers after any 58 correct input bits, without shared
//! state — which is why EDM can splice memory blocks into the stream
//! without coordinating scrambler state between devices.
//!
//! In the EDM architecture the scrambler also serves as the data-corruption
//! detector (§3.3, "Handling data corruption"): a corrupted link produces
//! persistent descrambling garbage, and EDM's policy is to disable the link.

/// The scrambler's 58-bit LFSR state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lfsr(u64);

const STATE_MASK: u64 = (1 << 58) - 1;

/// TX-side self-synchronizing scrambler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scrambler {
    state: Lfsr,
}

/// RX-side self-synchronizing descrambler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Descrambler {
    state: Lfsr,
}

impl Scrambler {
    /// Creates a scrambler with the given initial state (any value works;
    /// 802.3 suggests a non-zero seed to start whitening immediately).
    pub fn new(seed: u64) -> Self {
        Scrambler {
            state: Lfsr(seed & STATE_MASK),
        }
    }

    /// Scrambles one 64-bit block payload, LSB first.
    pub fn scramble(&mut self, payload: u64) -> u64 {
        let mut out = 0u64;
        let mut s = self.state.0;
        for i in 0..64 {
            let in_bit = (payload >> i) & 1;
            let s39 = (s >> 38) & 1;
            let s58 = (s >> 57) & 1;
            let out_bit = in_bit ^ s39 ^ s58;
            out |= out_bit << i;
            s = ((s << 1) | out_bit) & STATE_MASK;
        }
        self.state = Lfsr(s);
        out
    }
}

impl Descrambler {
    /// Creates a descrambler. The seed does **not** need to match the
    /// scrambler's: the descrambler self-synchronizes after 58 bits.
    pub fn new(seed: u64) -> Self {
        Descrambler {
            state: Lfsr(seed & STATE_MASK),
        }
    }

    /// Descrambles one 64-bit block payload, LSB first.
    pub fn descramble(&mut self, payload: u64) -> u64 {
        let mut out = 0u64;
        let mut s = self.state.0;
        for i in 0..64 {
            let in_bit = (payload >> i) & 1;
            let s39 = (s >> 38) & 1;
            let s58 = (s >> 57) & 1;
            let out_bit = in_bit ^ s39 ^ s58;
            out |= out_bit << i;
            // Self-synchronizing: shift in the *received* (scrambled) bit.
            s = ((s << 1) | in_bit) & STATE_MASK;
        }
        self.state = Lfsr(s);
        out
    }
}

impl Default for Scrambler {
    fn default() -> Self {
        Scrambler::new(0x3FF_FFFF_FFFF_FFFF)
    }
}

impl Default for Descrambler {
    fn default() -> Self {
        // Matches `Scrambler::default()` so that a freshly brought-up
        // link pair is synchronized from the very first block (mismatched
        // seeds would only garble the first 58 bits anyway — the
        // self-synchronization property, tested below).
        Descrambler::new(0x3FF_FFFF_FFFF_FFFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_seeds_roundtrip_immediately() {
        let mut tx = Scrambler::new(0x123456789);
        let mut rx = Descrambler::new(0x123456789);
        for i in 0..100u64 {
            let payload = i.wrapping_mul(0x9E3779B97F4A7C15);
            assert_eq!(rx.descramble(tx.scramble(payload)), payload);
        }
    }

    #[test]
    fn self_synchronizes_after_one_block() {
        // Mismatched seeds: the first block may be garbage, but after 58
        // scrambled bits have been shifted in, everything later is clean.
        let mut tx = Scrambler::new(0xDEAD_BEEF);
        let mut rx = Descrambler::new(0); // wrong seed
        let _ = rx.descramble(tx.scramble(0xAAAA_AAAA_AAAA_AAAA));
        for i in 0..50u64 {
            let payload = !i;
            assert_eq!(rx.descramble(tx.scramble(payload)), payload, "block {i}");
        }
    }

    #[test]
    fn recovers_after_corruption() {
        let mut tx = Scrambler::default();
        let mut rx = Descrambler::default();
        let _ = rx.descramble(tx.scramble(1));
        // Corrupt one block on the wire.
        let wire = tx.scramble(0x5555) ^ 0x10; // single bit error
        let bad = rx.descramble(wire);
        assert_ne!(bad, 0x5555, "corruption must be visible");
        // One full clean block re-synchronizes the 58-bit state.
        let _ = rx.descramble(tx.scramble(0));
        for i in 0..20u64 {
            assert_eq!(rx.descramble(tx.scramble(i * 3)), i * 3);
        }
    }

    #[test]
    fn scrambler_whitens() {
        // An all-zero input stream must not produce an all-zero output
        // (that is the scrambler's purpose: DC balance / transition density).
        let mut tx = Scrambler::default();
        let mut zeros = 0u32;
        for _ in 0..32 {
            if tx.scramble(0) == 0 {
                zeros += 1;
            }
        }
        assert_eq!(zeros, 0, "scrambled zero-stream should not stay zero");
    }

    #[test]
    fn state_stays_in_58_bits() {
        let s = Scrambler::new(u64::MAX);
        assert_eq!(s.state.0 & !STATE_MASK, 0);
    }
}
