//! MAC-frame ⇄ PHY-block encoding (the PCS encoder/decoder).
//!
//! An Ethernet frame is encoded as `/S/` (7 bytes) + `/D/`×k (8 bytes
//! each) + `/T_r/` (0–7 bytes). A 64 B minimum frame therefore occupies exactly
//! 9 blocks (`/S/` + 7 `/D/` + `/T1/`), matching §3.2 of the paper. The
//! encoder is also responsible for the inter-frame gap: at least
//! [`MIN_IFG_BLOCKS`] idle blocks trail every frame (the 12-byte / 96-bit
//! IFG of 802.3, rounded to block granularity — these are the idle slots
//! EDM repurposes to carry memory traffic).

use crate::block::Block;
use core::fmt;

/// Minimum Ethernet MAC frame size in bytes.
pub const MIN_FRAME_BYTES: usize = 64;

/// Maximum standard (non-jumbo) frame size in bytes.
pub const MTU_FRAME_BYTES: usize = 1518;

/// Idle blocks that must trail a frame: the 96-bit IFG is 1.5 blocks; the
/// encoder rounds up to 2 whole blocks.
pub const MIN_IFG_BLOCKS: usize = 2;

/// Errors from [`encode_frame`]/[`decode_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Frame shorter than the 64 B MAC minimum.
    TooShort(usize),
    /// Decoder saw a block sequence that is not `/S/ /D/* /T/`.
    MalformedSequence(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooShort(n) => {
                write!(f, "frame of {n} bytes is below the 64 B MAC minimum")
            }
            FrameError::MalformedSequence(why) => write!(f, "malformed block sequence: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a MAC frame into PHY blocks (without trailing IFG idles; see
/// [`encode_frame_with_ifg`]).
///
/// # Errors
///
/// Returns [`FrameError::TooShort`] if `frame` is under 64 bytes.
///
/// ```
/// use edm_phy::frame::encode_frame;
/// let blocks = encode_frame(&[0u8; 64]).unwrap();
/// assert_eq!(blocks.len(), 9); // /S/ + 7x/D/ + /T1/
/// ```
pub fn encode_frame(frame: &[u8]) -> Result<Vec<Block>, FrameError> {
    if frame.len() < MIN_FRAME_BYTES {
        return Err(FrameError::TooShort(frame.len()));
    }
    let mut blocks = Vec::with_capacity(2 + frame.len() / 8);
    let mut start = [0u8; 7];
    start.copy_from_slice(&frame[..7]);
    blocks.push(Block::Start(start));
    let rest = &frame[7..];
    let mut chunks = rest.chunks_exact(8);
    for c in &mut chunks {
        let mut d = [0u8; 8];
        d.copy_from_slice(c);
        blocks.push(Block::Data(d));
    }
    let rem = chunks.remainder();
    let mut tail = [0u8; 7];
    tail[..rem.len()].copy_from_slice(rem);
    blocks.push(Block::Terminate {
        bytes: tail,
        len: rem.len() as u8,
    });
    Ok(blocks)
}

/// Encodes a frame and appends the mandatory inter-frame gap idles.
///
/// # Errors
///
/// Returns [`FrameError::TooShort`] if `frame` is under 64 bytes.
pub fn encode_frame_with_ifg(frame: &[u8]) -> Result<Vec<Block>, FrameError> {
    let mut blocks = encode_frame(frame)?;
    blocks.extend(std::iter::repeat_n(Block::Idle, MIN_IFG_BLOCKS));
    Ok(blocks)
}

/// Decodes a contiguous `/S/ /D/* /T/` block run back into the MAC frame.
/// Leading and trailing `/E/` idles are permitted and skipped.
///
/// # Errors
///
/// Returns [`FrameError::MalformedSequence`] if the run does not follow the
/// frame grammar, and [`FrameError::TooShort`] if the decoded frame violates
/// the MAC minimum.
pub fn decode_frame(blocks: &[Block]) -> Result<Vec<u8>, FrameError> {
    let mut it = blocks.iter().skip_while(|b| **b == Block::Idle).peekable();
    let mut frame = Vec::new();
    match it.next() {
        Some(Block::Start(first)) => frame.extend_from_slice(first),
        _ => return Err(FrameError::MalformedSequence("expected /S/ first")),
    }
    loop {
        match it.next() {
            Some(Block::Data(d)) => frame.extend_from_slice(d),
            Some(Block::Terminate { bytes, len }) => {
                frame.extend_from_slice(&bytes[..*len as usize]);
                break;
            }
            Some(_) => return Err(FrameError::MalformedSequence("expected /D/ or /T/")),
            None => return Err(FrameError::MalformedSequence("frame not terminated")),
        }
    }
    for b in it {
        if *b != Block::Idle {
            return Err(FrameError::MalformedSequence("data after /T/"));
        }
    }
    if frame.len() < MIN_FRAME_BYTES {
        return Err(FrameError::TooShort(frame.len()));
    }
    Ok(frame)
}

/// Number of PHY blocks a frame of `len` bytes occupies (excluding IFG).
pub fn blocks_for_frame(len: usize) -> usize {
    assert!(len >= MIN_FRAME_BYTES, "frame below MAC minimum");
    // /S/ carries 7, each /D/ carries 8, /T/ carries the remainder.
    2 + (len - 7) / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_frame_is_nine_blocks() {
        // The paper: "Ethernet enforces at least 9 PHY blocks
        // (/S/, /T/, 7 /D/ blocks) per frame".
        let blocks = encode_frame(&[0xAB; 64]).unwrap();
        assert_eq!(blocks.len(), 9);
        assert!(matches!(blocks[0], Block::Start(_)));
        assert_eq!(
            blocks[1..8]
                .iter()
                .filter(|b| matches!(b, Block::Data(_)))
                .count(),
            7
        );
        assert!(matches!(blocks[8], Block::Terminate { len: 1, .. }));
    }

    #[test]
    fn roundtrip_various_sizes() {
        for len in [64usize, 65, 71, 72, 100, 512, 1500, 1518, 9000] {
            let frame: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let blocks = encode_frame(&frame).unwrap();
            assert_eq!(blocks.len(), blocks_for_frame(len));
            let back = decode_frame(&blocks).unwrap();
            assert_eq!(back, frame, "roundtrip failed for len {len}");
        }
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(
            encode_frame(&[0; 63]).unwrap_err(),
            FrameError::TooShort(63)
        );
    }

    #[test]
    fn ifg_appended() {
        let blocks = encode_frame_with_ifg(&[0; 64]).unwrap();
        assert_eq!(blocks.len(), 9 + MIN_IFG_BLOCKS);
        assert!(blocks[9..].iter().all(|b| *b == Block::Idle));
    }

    #[test]
    fn decode_skips_surrounding_idles() {
        let mut blocks = vec![Block::Idle, Block::Idle];
        blocks.extend(encode_frame(&[7; 64]).unwrap());
        blocks.push(Block::Idle);
        assert_eq!(decode_frame(&blocks).unwrap(), vec![7; 64]);
    }

    #[test]
    fn decode_rejects_missing_start() {
        let blocks = vec![Block::Data([0; 8])];
        assert!(matches!(
            decode_frame(&blocks),
            Err(FrameError::MalformedSequence(_))
        ));
    }

    #[test]
    fn decode_rejects_unterminated() {
        let mut blocks = encode_frame(&[0; 64]).unwrap();
        blocks.pop(); // drop /T/
        assert!(matches!(
            decode_frame(&blocks),
            Err(FrameError::MalformedSequence(_))
        ));
    }

    #[test]
    fn decode_rejects_interleaved_memory_block() {
        let mut blocks = encode_frame(&[0; 64]).unwrap();
        blocks.insert(3, Block::MemStart([0; 7]));
        assert!(matches!(
            decode_frame(&blocks),
            Err(FrameError::MalformedSequence(_))
        ));
    }

    #[test]
    fn blocks_for_frame_matches_encoder() {
        for len in 64..600 {
            let frame = vec![0u8; len];
            assert_eq!(encode_frame(&frame).unwrap().len(), blocks_for_frame(len));
        }
    }
}
