//! Property-based tests for the PHY substrate: codec round-trips,
//! scrambler self-synchronization, and preemption-mux invariants.

use edm_phy::block::Block;
use edm_phy::frame::{decode_frame, encode_frame};
use edm_phy::mem_codec::{decode_message, encode_message, MemMessage};
use edm_phy::preempt::{PreemptMux, RxReorderBuffer, TxPolicy};
use edm_phy::scramble::{Descrambler, Scrambler};
use proptest::prelude::*;

proptest! {
    /// Any frame of MAC-legal size round-trips through the PCS encoder.
    #[test]
    fn frame_codec_roundtrip(frame in proptest::collection::vec(any::<u8>(), 64..4096)) {
        let blocks = encode_frame(&frame).expect("legal size");
        let back = decode_frame(&blocks).expect("decodes");
        prop_assert_eq!(back, frame);
    }

    /// Any memory message round-trips through the /MS/../MT/ codec with
    /// header fields intact.
    #[test]
    fn mem_codec_roundtrip(
        dest in 0u16..512,
        msg_id in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let msg = MemMessage::new(dest, msg_id, payload);
        let back = decode_message(&encode_message(&msg)).expect("decodes");
        prop_assert_eq!(back, msg);
    }

    /// Every block survives the wire encoding (modulo the contextual
    /// /D/ vs /MD/ distinction).
    #[test]
    fn block_wire_roundtrip(payload in proptest::collection::vec(any::<u8>(), 8), len in 0u8..=7) {
        let mut seven = [0u8; 7];
        seven.copy_from_slice(&payload[..7]);
        let mut eight = [0u8; 8];
        eight.copy_from_slice(&payload);
        for block in [
            Block::Idle,
            Block::Start(seven),
            Block::Data(eight),
            Block::Terminate { bytes: seven, len },
            Block::MemStart(seven),
            Block::MemTerminate { bytes: seven, len },
        ] {
            let (sync, wire) = block.to_wire();
            let back = Block::from_wire(sync, wire).expect("decodes");
            prop_assert_eq!(back, block);
        }
    }

    /// Scrambler followed by descrambler is the identity once the
    /// descrambler has synchronized — regardless of seeds.
    #[test]
    fn scrambler_self_synchronizes(
        tx_seed in any::<u64>(),
        rx_seed in any::<u64>(),
        payloads in proptest::collection::vec(any::<u64>(), 2..64),
    ) {
        let mut tx = Scrambler::new(tx_seed);
        let mut rx = Descrambler::new(rx_seed);
        // First block may be garbled (unsynchronized state).
        let _ = rx.descramble(tx.scramble(payloads[0]));
        for &p in &payloads[1..] {
            prop_assert_eq!(rx.descramble(tx.scramble(p)), p);
        }
    }

    /// The preemption mux conserves and orders everything: all frame
    /// blocks come out in order, memory messages stay atomic, and the RX
    /// reorder buffer reconstructs the original frame exactly.
    #[test]
    fn preemption_preserves_frames_and_messages(
        frame in proptest::collection::vec(any::<u8>(), 64..2048),
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..128), 0..6),
        progress in 0usize..16,
        fair in any::<bool>(),
    ) {
        let policy = if fair { TxPolicy::Fair } else { TxPolicy::MemoryFirst };
        let mut mux = PreemptMux::new(policy);
        mux.enqueue_frame(encode_frame(&frame).expect("legal"));
        let mut wire = Vec::new();
        for _ in 0..progress {
            wire.push(mux.tick());
        }
        for m in &msgs {
            mux.enqueue_memory(encode_message(&MemMessage::new(1, 0, m.clone())));
        }
        wire.extend(mux.drain());

        let mut rx = RxReorderBuffer::new();
        let mut mem_blocks = Vec::new();
        let mut frames = Vec::new();
        for b in wire {
            let out = rx.push(b).expect("legal TX stream");
            mem_blocks.extend(out.mem);
            if let Some(f) = out.frame {
                frames.push(f);
            }
        }
        prop_assert_eq!(frames.len(), 1, "exactly one frame");
        prop_assert_eq!(decode_frame(&frames[0]).expect("frame intact"), frame);
        // Split the memory stream back into messages at /MS/ boundaries.
        let mut recovered = Vec::new();
        let mut current: Vec<Block> = Vec::new();
        for b in mem_blocks {
            if matches!(b, Block::MemStart(_)) && !current.is_empty() {
                recovered.push(std::mem::take(&mut current));
            }
            current.push(b);
        }
        if !current.is_empty() {
            recovered.push(current);
        }
        prop_assert_eq!(recovered.len(), msgs.len());
        for (run, want) in recovered.iter().zip(&msgs) {
            let got = decode_message(run).expect("message intact");
            prop_assert_eq!(got.payload(), &want[..]);
        }
    }

    /// Wire-cost accounting: EDM never loses to the MAC path for memory
    /// messages, and both are monotone in payload size.
    #[test]
    fn overhead_sanity(payload in 1u64..16384) {
        use edm_phy::overhead::{edm_wire_bits, mac_wire_bits, Encapsulation};
        prop_assert!(edm_wire_bits(payload) <= mac_wire_bits(payload, Encapsulation::RawEthernet));
        prop_assert!(edm_wire_bits(payload + 8) >= edm_wire_bits(payload));
        prop_assert!(
            mac_wire_bits(payload + 8, Encapsulation::RoCEv2)
                >= mac_wire_bits(payload, Encapsulation::RoCEv2)
        );
    }
}
