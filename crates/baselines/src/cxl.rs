//! CXL-style fabric: link-level credit-based flow control with no
//! end-to-end coordination (§4.3 baseline v).
//!
//! PCIe/CXL switches avoid buffer overflow with per-link credits: an
//! ingress port may only forward a flit to an egress buffer that has a
//! free credit, and the credit returns when the flit drains. Under incast,
//! the hot egress runs out of credits, the ingress queue's *head* flit
//! blocks, and everything behind it — including flits bound for idle
//! egresses — stalls: **head-of-line blocking**, the victim-cascade
//! failure mode the paper (and Aurelia \[92\]) identifies. There is no
//! SRPT, no admission control, and no way for a victim flow to overtake.

use edm_core::sim::{ClusterConfig, FabricProtocol, Flow, FlowKind, FlowOutcome, SimResult};
use edm_sim::{Duration, Engine, EventQueue, Time, World};
use std::collections::VecDeque;

/// CXL fabric configuration.
#[derive(Debug, Clone, Copy)]
pub struct CxlConfig {
    /// Flit payload size (CXL.mem transfers 64 B flits).
    pub flit_bytes: u32,
    /// Per-flit wire overhead (flit header + CRC).
    pub header_bytes: u32,
    /// Egress buffer credits, in flits.
    pub egress_credits: u32,
    /// Latency for a consumed credit to return to the pool (the credit
    /// update must physically travel back through the switch).
    pub credit_return_delay: Duration,
    /// Fixed one-way switch latency (~100 ns per CXL switch hop, §2.2).
    pub switch_latency: Duration,
    /// Fixed one-way host adapter latency.
    pub host_latency: Duration,
}

impl Default for CxlConfig {
    fn default() -> Self {
        CxlConfig {
            flit_bytes: 64,
            header_bytes: 8,
            // Enough credits to cover the credit-return loop at line rate
            // on an uncongested path, but shared under incast.
            egress_credits: 16,
            credit_return_delay: Duration::from_ns(50),
            switch_latency: Duration::from_ns(100),
            host_latency: Duration::from_ns(25),
        }
    }
}

/// The CXL protocol instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct CxlProtocol {
    /// Configuration.
    pub config: CxlConfig,
}

#[derive(Debug, Clone, Copy)]
struct Flit {
    flow: usize,
    bytes: u32,
    last: bool,
}

#[derive(Debug, Clone, Copy)]
enum CEv {
    /// A flow becomes active.
    Start { flow: usize },
    /// The host injects its next flit of `flow`.
    InjectNext { flow: usize },
    /// A flit reaches the switch ingress queue of `src`.
    IngressArrive { src: usize, flit: Flit },
    /// Ingress `src` attempts to forward its head flit.
    IngressTry { src: usize },
    /// A flit is accepted into egress `dst`'s credit buffer.
    EgressAccept { dst: usize, flit: Flit },
    /// Egress `dst` serializes its next buffered flit.
    EgressDrain { dst: usize },
    /// A credit returns to egress `dst`'s pool (waking one parked ingress
    /// atomically, so FIFO arbitration cannot be starved).
    CreditReturn { dst: usize },
    /// A flit lands at its destination node.
    NodeArrive { flit: Flit },
}

struct CxlWorld {
    cfg: CxlConfig,
    cluster: ClusterConfig,
    /// (data_src, data_dst, size) per flow.
    flows: Vec<(usize, usize, u32)>,
    remaining_to_send: Vec<u32>,
    delivered: Vec<u32>,
    completed: Vec<Option<Time>>,
    /// Per-ingress FIFO (HOL semantics: one queue per ingress port).
    ingress: Vec<VecDeque<Flit>>,
    /// Ingress crossbar next-free time (one flit per flit time).
    ingress_free_at: Vec<Time>,
    /// Ingress is parked waiting for a credit on some egress.
    ingress_blocked: Vec<bool>,
    /// Free credits per egress.
    credits: Vec<u32>,
    /// Ingresses blocked on each egress's credits (FIFO arbitration).
    credit_waiters: Vec<VecDeque<usize>>,
    /// Egress serialization buffers (≤ credits).
    egress_q: Vec<VecDeque<Flit>>,
    egress_busy: Vec<bool>,
    /// Host uplink next-free time.
    src_free_at: Vec<Time>,
}

impl CxlWorld {
    fn flit_time(&self) -> Duration {
        self.cluster
            .link
            .tx_time_bytes((self.cfg.flit_bytes + self.cfg.header_bytes) as u64)
    }

    fn inject_next(&mut self, flow: usize, now: Time, q: &mut EventQueue<CEv>) {
        if self.remaining_to_send[flow] == 0 {
            return;
        }
        let (src, _, _) = self.flows[flow];
        let start = now.max(self.src_free_at[src]);
        let bytes = self.remaining_to_send[flow].min(self.cfg.flit_bytes);
        self.remaining_to_send[flow] -= bytes;
        let last = self.remaining_to_send[flow] == 0;
        let depart = start + self.flit_time();
        self.src_free_at[src] = depart;
        q.schedule(
            depart + self.cluster.prop_delay + self.cfg.host_latency,
            CEv::IngressArrive {
                src,
                flit: Flit { flow, bytes, last },
            },
        );
        if !last {
            q.schedule(depart, CEv::InjectNext { flow });
        }
    }

    fn ingress_try(&mut self, src: usize, now: Time, q: &mut EventQueue<CEv>) {
        if self.ingress_blocked[src] || now < self.ingress_free_at[src] {
            return;
        }
        let Some(&head) = self.ingress[src].front() else {
            return;
        };
        let dst = self.flows[head.flow].1;
        if self.credits[dst] == 0 {
            // Head-of-line block: the whole ingress parks on this egress.
            self.ingress_blocked[src] = true;
            self.credit_waiters[dst].push_back(src);
            return;
        }
        self.credits[dst] -= 1;
        let flit = self.ingress[src].pop_front().expect("head exists");
        // Crossbar pass at flit granularity.
        let done = now + self.flit_time();
        self.ingress_free_at[src] = done;
        q.schedule(done, CEv::EgressAccept { dst, flit });
        q.schedule(done, CEv::IngressTry { src });
    }

    fn egress_drain(&mut self, dst: usize, now: Time, q: &mut EventQueue<CEv>) {
        let Some(flit) = self.egress_q[dst].pop_front() else {
            self.egress_busy[dst] = false;
            return;
        };
        let tx = self.flit_time();
        q.schedule(
            now + tx + self.cluster.prop_delay + self.cfg.switch_latency,
            CEv::NodeArrive { flit },
        );
        // Credit returns once the flit has left the buffer *and* the
        // credit update has travelled back.
        q.schedule(
            now + tx + self.cfg.credit_return_delay,
            CEv::CreditReturn { dst },
        );
        q.schedule(now + tx, CEv::EgressDrain { dst });
    }
}

impl World for CxlWorld {
    type Event = CEv;

    fn handle(&mut self, now: Time, ev: CEv, q: &mut EventQueue<CEv>) {
        match ev {
            CEv::Start { flow } => self.inject_next(flow, now, q),
            CEv::InjectNext { flow } => self.inject_next(flow, now, q),
            CEv::IngressArrive { src, flit } => {
                self.ingress[src].push_back(flit);
                self.ingress_try(src, now, q);
            }
            CEv::IngressTry { src } => self.ingress_try(src, now, q),
            CEv::EgressAccept { dst, flit } => {
                self.egress_q[dst].push_back(flit);
                if !self.egress_busy[dst] {
                    self.egress_busy[dst] = true;
                    q.schedule(now, CEv::EgressDrain { dst });
                }
            }
            CEv::EgressDrain { dst } => self.egress_drain(dst, now, q),
            CEv::CreditReturn { dst } => {
                self.credits[dst] += 1;
                if let Some(waiter) = self.credit_waiters[dst].pop_front() {
                    self.ingress_blocked[waiter] = false;
                    self.ingress_try(waiter, now, q);
                }
            }
            CEv::NodeArrive { flit } => {
                self.delivered[flit.flow] += flit.bytes;
                let (_, _, size) = self.flows[flit.flow];
                if flit.last && self.delivered[flit.flow] >= size {
                    self.completed[flit.flow] = Some(now + self.cfg.host_latency);
                }
            }
        }
    }
}

impl FabricProtocol for CxlProtocol {
    fn name(&self) -> &'static str {
        "CXL"
    }

    fn simulate(&mut self, cluster: &ClusterConfig, flows: &[Flow]) -> SimResult {
        let n = cluster.nodes;
        let dirs: Vec<(usize, usize, u32)> = flows
            .iter()
            .map(|f| match f.kind {
                FlowKind::Write => (f.src, f.dst, f.size),
                FlowKind::Read => (f.dst, f.src, f.size),
            })
            .collect();
        let world = CxlWorld {
            remaining_to_send: dirs.iter().map(|&(_, _, s)| s).collect(),
            delivered: vec![0; flows.len()],
            completed: vec![None; flows.len()],
            flows: dirs,
            ingress: vec![VecDeque::new(); n],
            ingress_free_at: vec![Time::ZERO; n],
            ingress_blocked: vec![false; n],
            credits: vec![self.config.egress_credits; n],
            credit_waiters: vec![VecDeque::new(); n],
            egress_q: vec![VecDeque::new(); n],
            egress_busy: vec![false; n],
            src_free_at: vec![Time::ZERO; n],
            cfg: self.config,
            cluster: *cluster,
        };
        let mut engine = Engine::new(world);
        for (i, f) in flows.iter().enumerate() {
            let start = match f.kind {
                FlowKind::Write => f.arrival,
                FlowKind::Read => {
                    // Request flit flight to the memory node.
                    f.arrival
                        + self.config.host_latency
                        + self.config.switch_latency
                        + 2 * cluster.prop_delay
                        + cluster.link.tx_time_bytes(72)
                }
            };
            engine.queue_mut().schedule(start, CEv::Start { flow: i });
        }
        engine.run();
        let world = engine.into_world();
        let outcomes = flows
            .iter()
            .enumerate()
            .map(|(i, &flow)| FlowOutcome {
                flow,
                completed: world.completed[i].expect("flow completes"),
            })
            .collect();
        SimResult {
            protocol: "CXL",
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_sim::Bandwidth;

    fn cluster(n: usize) -> ClusterConfig {
        ClusterConfig {
            nodes: n,
            link: Bandwidth::from_gbps(100),
            prop_delay: Duration::from_ns(10),
            pipeline_latency: Duration::from_ns(54),
        }
    }

    fn wflow(id: usize, src: usize, dst: usize, size: u32, at_ns: u64) -> Flow {
        Flow {
            id,
            src,
            dst,
            size,
            arrival: Time::from_ns(at_ns),
            kind: FlowKind::Write,
        }
    }

    #[test]
    fn solo_write_is_fast() {
        let c = cluster(4);
        let r = CxlProtocol::default().simulate(&c, &[wflow(0, 0, 1, 64, 0)]);
        let ns = r.outcomes[0].mct().as_ns_f64();
        // One flit: host + crossbar + switch + wire ≈ 200-350 ns.
        assert!((100.0..500.0).contains(&ns), "CXL solo MCT {ns} ns");
    }

    #[test]
    fn multi_flit_flow_completes_fully() {
        let c = cluster(4);
        let r = CxlProtocol::default().simulate(&c, &[wflow(0, 0, 1, 10_000, 0)]);
        assert!(r.outcomes[0].mct() >= c.link.tx_time_bytes(10_000));
    }

    #[test]
    fn incast_exhausts_credits_and_blocks() {
        let c = cluster(32);
        let flows: Vec<Flow> = (0..16).map(|i| wflow(i, i, 31, 4096, 0)).collect();
        let r = CxlProtocol::default().simulate(&c, &flows);
        let solo = CxlProtocol::default()
            .simulate(&c, &[wflow(0, 0, 31, 4096, 0)])
            .outcomes[0]
            .mct();
        let worst = r.outcomes.iter().map(|o| o.mct()).max().unwrap();
        assert!(
            worst.as_ns_f64() > 3.0 * solo.as_ns_f64(),
            "incast must inflate CXL MCT: worst {worst} vs solo {solo}"
        );
    }

    #[test]
    fn victim_flow_suffers_hol_blocking() {
        // Flows 0..8 incast into node 15 from sources 0..8. A victim flow
        // from source 0 to the *idle* node 14 gets stuck behind them.
        let c = cluster(16);
        let mut flows: Vec<Flow> = (0..8).map(|i| wflow(i, i, 15, 8192, 0)).collect();
        flows.push(wflow(8, 0, 14, 512, 100));
        let r = CxlProtocol::default().simulate(&c, &flows);
        let victim = r.outcomes[8].mct();
        let solo = CxlProtocol::default()
            .simulate(&c, &[wflow(0, 0, 14, 512, 0)])
            .outcomes[0]
            .mct();
        assert!(
            victim.as_ns_f64() > 2.0 * solo.as_ns_f64(),
            "HOL blocking must hurt the victim: {victim} vs solo {solo}"
        );
    }

    #[test]
    fn reads_traverse_reverse_path() {
        let c = cluster(4);
        let read = Flow {
            id: 0,
            src: 0,
            dst: 1,
            size: 64,
            arrival: Time::ZERO,
            kind: FlowKind::Read,
        };
        let r = CxlProtocol::default().simulate(&c, &[read]);
        let w = CxlProtocol::default().simulate(&c, &[wflow(0, 1, 0, 64, 0)]);
        assert!(r.outcomes[0].mct() > w.outcomes[0].mct());
    }
}
