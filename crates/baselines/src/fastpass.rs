//! Fastpass — a centralized *server-based* flow scheduler (§4.3
//! baseline vi).
//!
//! Fastpass also schedules every packet centrally, but the arbiter is a
//! commodity server hanging off one switch port. The paper grants it an
//! idealized zero-time matching algorithm and a 100 Gb/s NIC — and shows
//! that the NIC is precisely the bottleneck: every demand update and
//! every allocation must cross that single link, whose capacity is >100×
//! less than the cluster's aggregate. At high load and small messages the
//! control channel saturates and scheduling latency explodes, which is
//! the Figure 8a blow-up.
//!
//! Faithful to the original Fastpass design, control traffic is
//! *aggregated per endpoint*: a host folds all its pending demands into
//! one update packet (at most one in flight), and the arbiter folds all
//! of a sender's allocations into one grant packet. Even with this
//! batching, the single NIC cannot keep up with a 144-node cluster's
//! small-message demand.
//!
//! The matching core is the same priority matching as EDM's (we reuse
//! [`edm_sched::Scheduler`] with zero-cost clocking); only the control
//! message path differs: EDM's rides the switch's own PHY, Fastpass's
//! rides a serialized server link.

use edm_core::sim::{ClusterConfig, FabricProtocol, Flow, FlowKind, FlowOutcome, SimResult};
use edm_sched::{Notification, Policy, Scheduler, SchedulerConfig};
use edm_sim::{Bandwidth, Duration, Engine, EventQueue, Time, World};
use std::collections::VecDeque;

/// Fastpass configuration.
#[derive(Debug, Clone, Copy)]
pub struct FastpassConfig {
    /// Arbiter server NIC bandwidth (the paper grants 100 Gb/s).
    pub server_link: Bandwidth,
    /// Wire size of one aggregated control packet (minimum Ethernet frame
    /// + preamble + IFG).
    pub control_bytes: u32,
    /// Demands/allocations one control packet can carry.
    pub batch_limit: usize,
    /// Data chunk per allocation.
    pub chunk_bytes: u32,
}

impl Default for FastpassConfig {
    fn default() -> Self {
        FastpassConfig {
            server_link: Bandwidth::from_gbps(100),
            control_bytes: 84,
            // A 64 B frame payload of 46 B fits ~11 four-byte allocation
            // entries; keep 8 as a round batch.
            batch_limit: 8,
            chunk_bytes: 256,
        }
    }
}

/// The Fastpass protocol instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastpassProtocol {
    /// Configuration.
    pub config: FastpassConfig,
}

#[derive(Debug, Clone, Copy)]
enum FEv {
    /// A flow arrives at its sender.
    FlowArrive { flow: usize },
    /// Host `src` emits its (aggregated) demand-update packet.
    NotifySend { src: usize },
    /// The demand update from `src` reaches the arbiter.
    NotifyArrive { src: usize, count: usize },
    /// Scheduler poll (matching itself is instantaneous).
    Poll,
    /// The arbiter emits the aggregated allocation packet for `src`.
    GrantSend { src: usize },
    /// The allocation packet reaches sender `src`.
    GrantDeliver { src: usize, count: usize },
    /// A data chunk lands at the destination.
    ChunkArrive { flow: usize, last: bool },
}

#[derive(Debug, Clone, Copy)]
struct Alloc {
    flow: usize,
    chunk: u32,
    last: bool,
}

struct FastpassWorld {
    cfg: FastpassConfig,
    cluster: ClusterConfig,
    flows: Vec<(usize, usize, u32)>,
    scheduler: Scheduler,
    lookup: std::collections::HashMap<(u16, u16, u8), usize>,
    next_msg_id: std::collections::HashMap<(u16, u16), u8>,
    /// Flows rejected by the scheduler's X bound, awaiting a retry.
    sched_backlog: VecDeque<usize>,
    completed: Vec<Option<Time>>,
    /// Arbiter NIC serialization (the bottleneck).
    server_rx_free_at: Time,
    server_tx_free_at: Time,
    /// Per-host pending demand announcements (folded into one packet).
    notify_pending: Vec<VecDeque<usize>>,
    notify_inflight: Vec<bool>,
    /// Per-sender pending allocations (folded into one packet).
    grant_pending: Vec<VecDeque<Alloc>>,
    grant_inflight: Vec<bool>,
    /// Sender uplink serialization for data.
    src_free_at: Vec<Time>,
    poll_at: Option<Time>,
}

impl FastpassWorld {
    fn control_time(&self) -> Duration {
        self.cfg
            .server_link
            .tx_time_bytes(self.cfg.control_bytes as u64)
    }

    fn half_hop(&self) -> Duration {
        self.cluster.pipeline_latency / 2 + self.cluster.prop_delay
    }

    fn schedule_poll(&mut self, at: Time, q: &mut EventQueue<FEv>) {
        if self.poll_at.is_none_or(|t| at < t) {
            self.poll_at = Some(at);
            q.schedule(at, FEv::Poll);
        }
    }

    fn try_notify(&mut self, flow: usize, now: Time, q: &mut EventQueue<FEv>) {
        let (s, d, size) = self.flows[flow];
        let (s, d) = (s as u16, d as u16);
        let id_slot = self.next_msg_id.entry((s, d)).or_insert(0);
        let msg_id = *id_slot;
        match self
            .scheduler
            .notify(now, Notification::new(s, d, msg_id, size))
        {
            Ok(()) => {
                *id_slot = id_slot.wrapping_add(1);
                self.lookup.insert((s, d, msg_id), flow);
                self.schedule_poll(now, q);
            }
            Err(edm_sched::scheduler::NotifyError::PairLimitReached { .. }) => {
                self.sched_backlog.push_back(flow);
            }
            Err(e) => panic!("unexpected notify error: {e}"),
        }
    }
}

impl World for FastpassWorld {
    type Event = FEv;

    fn handle(&mut self, now: Time, ev: FEv, q: &mut EventQueue<FEv>) {
        match ev {
            FEv::FlowArrive { flow } => {
                let src = self.flows[flow].0;
                self.notify_pending[src].push_back(flow);
                if !self.notify_inflight[src] {
                    self.notify_inflight[src] = true;
                    q.schedule(now, FEv::NotifySend { src });
                }
            }
            FEv::NotifySend { src } => {
                // One aggregated demand packet serializes on the arbiter's
                // RX link; it announces up to batch_limit pending flows.
                let count = self.notify_pending[src].len().min(self.cfg.batch_limit);
                let start = now.max(self.server_rx_free_at);
                let done = start + self.control_time();
                self.server_rx_free_at = done;
                q.schedule(done + self.half_hop(), FEv::NotifyArrive { src, count });
            }
            FEv::NotifyArrive { src, count } => {
                for _ in 0..count {
                    if let Some(flow) = self.notify_pending[src].pop_front() {
                        self.try_notify(flow, now, q);
                    }
                }
                if self.notify_pending[src].is_empty() {
                    self.notify_inflight[src] = false;
                } else {
                    q.schedule(now, FEv::NotifySend { src });
                }
            }
            FEv::Poll => {
                // Drop superseded poll events (see EdmWorld: stale events
                // would each spawn a wake-up chain).
                if self.poll_at != Some(now) {
                    return;
                }
                self.poll_at = None;
                let result = self.scheduler.poll(now);
                for g in &result.grants {
                    let flow = *self
                        .lookup
                        .get(&(g.src, g.dest, g.msg_id))
                        .expect("grant for known flow");
                    if g.is_final() {
                        self.lookup.remove(&(g.src, g.dest, g.msg_id));
                    }
                    let src = g.src as usize;
                    self.grant_pending[src].push_back(Alloc {
                        flow,
                        chunk: g.chunk_bytes,
                        last: g.is_final(),
                    });
                    if !self.grant_inflight[src] {
                        self.grant_inflight[src] = true;
                        q.schedule(now, FEv::GrantSend { src });
                    }
                }
                if let Some(t) = result.next_wakeup {
                    self.schedule_poll(t, q);
                }
            }
            FEv::GrantSend { src } => {
                let count = self.grant_pending[src].len().min(self.cfg.batch_limit);
                let start = now.max(self.server_tx_free_at);
                let done = start + self.control_time();
                self.server_tx_free_at = done;
                q.schedule(done + self.half_hop(), FEv::GrantDeliver { src, count });
            }
            FEv::GrantDeliver { src, count } => {
                for _ in 0..count {
                    let Some(alloc) = self.grant_pending[src].pop_front() else {
                        break;
                    };
                    let start = now.max(self.src_free_at[src]);
                    let tx = self.cluster.link.tx_time_bytes(alloc.chunk as u64);
                    self.src_free_at[src] = start + tx;
                    q.schedule(
                        start
                            + tx
                            + 2 * self.cluster.prop_delay
                            + self.cluster.pipeline_latency / 2,
                        FEv::ChunkArrive {
                            flow: alloc.flow,
                            last: alloc.last,
                        },
                    );
                }
                if self.grant_pending[src].is_empty() {
                    self.grant_inflight[src] = false;
                } else {
                    q.schedule(now, FEv::GrantSend { src });
                }
            }
            FEv::ChunkArrive { flow, last } => {
                if last {
                    self.completed[flow] = Some(now);
                    if let Some(next) = self.sched_backlog.pop_front() {
                        self.try_notify(next, now, q);
                    }
                    self.schedule_poll(now, q);
                }
            }
        }
    }
}

impl FabricProtocol for FastpassProtocol {
    fn name(&self) -> &'static str {
        "Fastpass"
    }

    fn simulate(&mut self, cluster: &ClusterConfig, flows: &[Flow]) -> SimResult {
        let dirs: Vec<(usize, usize, u32)> = flows
            .iter()
            .map(|f| match f.kind {
                FlowKind::Write => (f.src, f.dst, f.size),
                FlowKind::Read => (f.dst, f.src, f.size),
            })
            .collect();
        let sched_cfg = SchedulerConfig {
            ports: cluster.nodes,
            chunk_bytes: self.config.chunk_bytes,
            link: cluster.link,
            policy: Policy::Srpt,
            max_active_per_pair: 3,
            // Idealized: the matching itself costs zero time.
            clock: Duration::from_ps(0),
        };
        let n = cluster.nodes;
        let world = FastpassWorld {
            cfg: self.config,
            cluster: *cluster,
            completed: vec![None; flows.len()],
            flows: dirs,
            scheduler: Scheduler::new(sched_cfg),
            lookup: std::collections::HashMap::new(),
            next_msg_id: std::collections::HashMap::new(),
            sched_backlog: VecDeque::new(),
            server_rx_free_at: Time::ZERO,
            server_tx_free_at: Time::ZERO,
            notify_pending: vec![VecDeque::new(); n],
            notify_inflight: vec![false; n],
            grant_pending: vec![VecDeque::new(); n],
            grant_inflight: vec![false; n],
            src_free_at: vec![Time::ZERO; n],
            poll_at: None,
        };
        let mut engine = Engine::new(world);
        for (i, f) in flows.iter().enumerate() {
            // Request hop for reads; then the demand is announced.
            let at = match f.kind {
                FlowKind::Write => f.arrival,
                FlowKind::Read => f.arrival + Duration::from_ns(100),
            };
            engine.queue_mut().schedule(at, FEv::FlowArrive { flow: i });
        }
        engine.run();
        let world = engine.into_world();
        let outcomes = flows
            .iter()
            .enumerate()
            .map(|(i, &flow)| FlowOutcome {
                flow,
                completed: world.completed[i].expect("flow completes"),
            })
            .collect();
        SimResult {
            protocol: "Fastpass",
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> ClusterConfig {
        ClusterConfig {
            nodes: n,
            link: Bandwidth::from_gbps(100),
            prop_delay: Duration::from_ns(10),
            pipeline_latency: Duration::from_ns(54),
        }
    }

    fn wflow(id: usize, src: usize, dst: usize, size: u32, at_ns: u64) -> Flow {
        Flow {
            id,
            src,
            dst,
            size,
            arrival: Time::from_ns(at_ns),
            kind: FlowKind::Write,
        }
    }

    #[test]
    fn solo_flow_completes_reasonably() {
        let c = cluster(4);
        let r = FastpassProtocol::default().simulate(&c, &[wflow(0, 0, 1, 64, 0)]);
        let ns = r.outcomes[0].mct().as_ns_f64();
        assert!((50.0..500.0).contains(&ns), "Fastpass solo MCT {ns} ns");
    }

    #[test]
    fn control_channel_saturates_under_many_small_flows() {
        // A synchronized burst of small flows from many senders: the
        // arbiter NIC serializes one control packet per sender per batch,
        // which dominates completion for the tail.
        let c = cluster(64);
        let flows: Vec<Flow> = (0..2000)
            .map(|i| wflow(i, i % 32, 32 + (i % 32), 64, (i / 64) as u64))
            .collect();
        let r = FastpassProtocol::default().simulate(&c, &flows);
        let worst = r
            .outcomes
            .iter()
            .map(|o| o.mct().as_ns_f64())
            .fold(0.0, f64::max);
        let solo = FastpassProtocol::default()
            .simulate(&c, &[wflow(0, 0, 32, 64, 0)])
            .outcomes[0]
            .mct()
            .as_ns_f64();
        assert!(
            worst > 5.0 * solo,
            "control bottleneck must dominate: worst {worst} vs solo {solo}"
        );
    }

    #[test]
    fn batching_amortizes_control_cost() {
        // With batching, the 100th flow of one sender costs far less than
        // 100 separate control round trips.
        let c = cluster(4);
        let flows: Vec<Flow> = (0..100).map(|i| wflow(i, 0, 1, 64, 0)).collect();
        let r = FastpassProtocol::default().simulate(&c, &flows);
        let worst = r
            .outcomes
            .iter()
            .map(|o| o.mct().as_ns_f64())
            .fold(0.0, f64::max);
        // Unbatched would cost ≥ 100 × (2 × 6.72 ns) control alone plus
        // the X-limit round trips; batched completes in a few us.
        assert!(worst < 10_000.0, "batched tail {worst} ns");
    }

    #[test]
    fn matching_is_still_conflict_free() {
        let c = cluster(8);
        let flows: Vec<Flow> = (0..4).map(|i| wflow(i, i, 4 + i, 256, 0)).collect();
        let r = FastpassProtocol::default().simulate(&c, &flows);
        let mcts: Vec<f64> = r.outcomes.iter().map(|o| o.mct().as_ns_f64()).collect();
        let spread = mcts.iter().cloned().fold(0.0, f64::max)
            - mcts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 150.0, "disjoint pairs spread {spread} ns");
    }

    #[test]
    fn all_flows_complete() {
        let c = cluster(16);
        let flows: Vec<Flow> = (0..200)
            .map(|i| {
                wflow(
                    i,
                    i % 8,
                    8 + (i % 8),
                    64 + (i as u32 % 3) * 512,
                    i as u64 * 20,
                )
            })
            .collect();
        let r = FastpassProtocol::default().simulate(&c, &flows);
        assert_eq!(r.outcomes.len(), 200);
    }
}
