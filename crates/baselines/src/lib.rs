//! `edm-baselines` — every comparator system the paper evaluates EDM
//! against.
//!
//! Two families:
//!
//! * **Latency-model stacks** ([`stacks`]): the TCP/IP, RoCEv2, and raw
//!   Ethernet columns of Table 1 and the CXL constants of Figure 7,
//!   expressed in the same [`edm_core::latency::FabricLatency`]
//!   decomposition as EDM.
//! * **Flow/congestion-control simulators** (for Figure 8), all
//!   implementing [`edm_core::sim::FabricProtocol`]:
//!   * [`queueing`] — the reactive family: DCTCP (sender-driven ECN),
//!     pFabric (in-network SRPT on top of small buffers), and PFC+DCQCN
//!     (lossless PAUSE with head-of-line blocking);
//!   * [`cxl`] — credit-based link-level flow control with HOL blocking;
//!   * [`ird`] — an idealized receiver-driven proactive transport
//!     (Homa/pHost/NDP/ExpressPass composite, per the paper);
//!   * [`fastpass`] — a centralized server-based scheduler whose control
//!     NIC is the bottleneck.
//!
//! ```
//! use edm_baselines::prelude::*;
//! use edm_core::sim::{ClusterConfig, FabricProtocol};
//!
//! let protocols: Vec<Box<dyn FabricProtocol>> = all_protocols();
//! assert_eq!(protocols.len(), 7); // EDM + 6 baselines
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cxl;
pub mod fastpass;
pub mod ird;
pub mod queueing;
pub mod stacks;

pub use cxl::CxlProtocol;
pub use fastpass::FastpassProtocol;
pub use ird::IrdProtocol;
pub use queueing::{QueueConfig, QueueFabric};

/// Convenience re-exports for experiment harnesses.
pub mod prelude {
    pub use crate::cxl::CxlProtocol;
    pub use crate::fastpass::FastpassProtocol;
    pub use crate::ird::IrdProtocol;
    pub use crate::queueing::{QueueConfig, QueueFabric};
    use edm_core::sim::FabricProtocol;

    /// The full Figure 8 lineup: EDM plus the six baselines, in the
    /// paper's legend order.
    pub fn all_protocols() -> Vec<Box<dyn FabricProtocol>> {
        vec![
            Box::new(edm_core::sim::EdmProtocol::default()),
            Box::new(IrdProtocol::default()),
            Box::new(QueueFabric::new(QueueConfig::pfabric())),
            Box::new(QueueFabric::new(QueueConfig::pfc_dcqcn())),
            Box::new(QueueFabric::new(QueueConfig::dctcp())),
            Box::new(CxlProtocol::default()),
            Box::new(FastpassProtocol::default()),
        ]
    }
}
