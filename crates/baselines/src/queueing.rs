//! A shared output-queued packet fabric that models the *reactive*
//! congestion-control baselines of §4.3: DCTCP, pFabric, and PFC+DCQCN.
//!
//! All three share the same single-switch star machinery — host uplinks,
//! per-egress-port queues, packet serialization — and differ only in the
//! knobs the paper calls out:
//!
//! | Protocol  | queue discipline | buffer | loss model | rate control |
//! |-----------|------------------|--------|-----------|--------------|
//! | DCTCP     | FIFO             | large  | drop-tail + RTO | ECN window |
//! | pFabric   | SRPT priority    | small  | priority drop + fast retx | line rate |
//! | PFC+DCQCN | FIFO             | large  | lossless (PAUSE + HOL) | ECN window |
//!
//! These are reactive protocols: they only learn about congestion after
//! queues have already built, which is exactly the §2.4 limitation the
//! experiment demonstrates.

use edm_core::sim::{ClusterConfig, FabricProtocol, Flow, FlowKind, FlowOutcome, SimResult};
use edm_sim::{Duration, Engine, EventQueue, Time, World};
use std::collections::VecDeque;

/// Egress queue service discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-in-first-out (DCTCP, PFC).
    Fifo,
    /// Shortest-remaining-flow-first with priority dropping (pFabric).
    SrptPriority,
}

/// Loss behaviour of the switch buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossMode {
    /// Drop packets that overflow the buffer; sender recovers after `rto`.
    DropTail {
        /// Retransmission timeout.
        rto: Duration,
    },
    /// Lossless: senders whose head packet targets a port over `xoff`
    /// stall until it drains below `xon` (PAUSE with head-of-line
    /// blocking).
    Pfc {
        /// Queue depth that triggers PAUSE.
        xoff_bytes: u64,
        /// Queue depth that releases PAUSE.
        xon_bytes: u64,
    },
}

/// Configuration of the queueing fabric.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Protocol display name.
    pub name: &'static str,
    /// Max packet payload bytes.
    pub mtu: u32,
    /// Per-packet wire overhead (headers, preamble, IFG).
    pub header_bytes: u32,
    /// Per-egress-port buffer.
    pub buffer_bytes: u64,
    /// ECN marking threshold (queue depth at enqueue).
    pub ecn_threshold_bytes: Option<u64>,
    /// Service discipline.
    pub discipline: Discipline,
    /// Loss model.
    pub loss: LossMode,
    /// Whether ECN marks halve the congestion window (DCTCP/DCQCN-style).
    pub window_control: bool,
    /// Initial congestion window in packets.
    pub initial_window_pkts: u32,
    /// Fixed one-way switch pipeline latency (L2 processing).
    pub switch_latency: Duration,
    /// Fixed one-way host stack latency.
    pub host_latency: Duration,
}

impl QueueConfig {
    /// DCTCP (§4.3 baseline i): FIFO, deep buffers, drop-tail with a
    /// multi-microsecond RTO, ECN-driven window.
    pub fn dctcp() -> Self {
        QueueConfig {
            name: "DCTCP",
            mtu: 1000,
            header_bytes: 58, // Eth + IP + TCP + preamble/IFG
            buffer_bytes: 200 * 1024,
            ecn_threshold_bytes: Some(30 * 1024),
            discipline: Discipline::Fifo,
            loss: LossMode::DropTail {
                rto: Duration::from_us(12),
            },
            window_control: true,
            initial_window_pkts: 10,
            switch_latency: Duration::from_ns(400),
            host_latency: Duration::from_ns(230),
        }
    }

    /// pFabric (§4.3 baseline iii): SRPT priority queues over shallow
    /// buffers, "running on top of DCTCP" as the paper configures it —
    /// DCTCP's windows and retransmission timeout, with in-network SRPT
    /// service and priority-aware dropping.
    pub fn pfabric() -> Self {
        QueueConfig {
            name: "pFabric",
            mtu: 1000,
            header_bytes: 58,
            buffer_bytes: 36 * 1024,
            ecn_threshold_bytes: Some(30 * 1024),
            discipline: Discipline::SrptPriority,
            loss: LossMode::DropTail {
                rto: Duration::from_us(12), // DCTCP's RTO underneath
            },
            window_control: true,
            initial_window_pkts: 10,
            switch_latency: Duration::from_ns(400),
            host_latency: Duration::from_ns(230),
        }
    }

    /// PFC + DCQCN (§4.3 baseline iv): lossless PAUSE with head-of-line
    /// blocking, ECN-driven rate cuts.
    pub fn pfc_dcqcn() -> Self {
        QueueConfig {
            name: "PFC",
            mtu: 1000,
            header_bytes: 58,
            buffer_bytes: u64::MAX, // lossless
            ecn_threshold_bytes: Some(30 * 1024),
            discipline: Discipline::Fifo,
            loss: LossMode::Pfc {
                xoff_bytes: 60 * 1024,
                xon_bytes: 30 * 1024,
            },
            window_control: true,
            initial_window_pkts: 10,
            switch_latency: Duration::from_ns(400),
            host_latency: Duration::from_ns(230),
        }
    }
}

/// A queueing-fabric protocol instance.
#[derive(Debug, Clone, Copy)]
pub struct QueueFabric {
    config: QueueConfig,
}

impl QueueFabric {
    /// Wraps a configuration.
    pub fn new(config: QueueConfig) -> Self {
        QueueFabric { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &QueueConfig {
        &self.config
    }
}

#[derive(Debug, Clone, Copy)]
struct QPkt {
    flow: usize,
    bytes: u32,
    marked: bool,
}

#[derive(Debug)]
struct FlowState {
    /// Data-direction source node.
    src: usize,
    /// Data-direction destination node.
    dst: usize,
    size: u32,
    to_send: u32,
    delivered: u32,
    inflight_pkts: u32,
    cwnd_pkts: u32,
    completed: Option<Time>,
}

impl FlowState {
    fn remaining(&self) -> u32 {
        self.size - self.delivered
    }
}

#[derive(Debug, Clone)]
enum QEv {
    /// Flow becomes active at its (request-adjusted) start time.
    Start { flow: usize },
    /// Try to emit the next packet from `src`'s uplink.
    SrcTry { src: usize },
    /// A packet reaches the switch ingress.
    SwitchArrive { pkt: QPkt },
    /// Egress port `dst` finishes serializing its current packet.
    PortDrain { dst: usize },
    /// A packet reaches its destination node.
    NodeArrive { pkt: QPkt },
    /// A dropped packet's retransmission budget returns to the sender.
    Retx { flow: usize, bytes: u32 },
}

struct QWorld {
    cfg: QueueConfig,
    cluster: ClusterConfig,
    flows: Vec<FlowState>,
    /// Per-source FIFO of active flow indices (round-robin service).
    src_active: Vec<VecDeque<usize>>,
    src_free_at: Vec<Time>,
    /// Per-source: stalled by PFC on some egress.
    src_stalled: Vec<bool>,
    /// Egress queues.
    egress: Vec<VecDeque<QPkt>>,
    egress_bytes: Vec<u64>,
    egress_busy: Vec<bool>,
    /// Sources waiting for PFC xon on each egress.
    pfc_waiters: Vec<Vec<usize>>,
    drops: u64,
    marks: u64,
}

impl QWorld {
    fn pkt_wire_time(&self, bytes: u32) -> Duration {
        self.cluster
            .link
            .tx_time_bytes((bytes + self.cfg.header_bytes) as u64)
    }

    fn activate(&mut self, flow: usize, q: &mut EventQueue<QEv>, now: Time) {
        let src = self.flows[flow].src;
        self.src_active[src].push_back(flow);
        q.schedule(now, QEv::SrcTry { src });
    }

    /// Whether PFC currently gates packets toward `dst`.
    fn pfc_blocked(&self, dst: usize) -> bool {
        match self.cfg.loss {
            LossMode::Pfc { xoff_bytes, .. } => self.egress_bytes[dst] >= xoff_bytes,
            LossMode::DropTail { .. } => false,
        }
    }

    fn try_send(&mut self, src: usize, now: Time, q: &mut EventQueue<QEv>) {
        if self.src_stalled[src] || now < self.src_free_at[src] {
            return;
        }
        // Round-robin over this source's active flows; head-of-line rules
        // apply under PFC (the head flow blocks the whole uplink).
        let Some(&flow) = self.src_active[src].front() else {
            return;
        };
        let f = &self.flows[flow];
        if f.to_send == 0 || f.inflight_pkts >= f.cwnd_pkts {
            // Head flow can't progress; rotate if another could.
            if f.to_send == 0 && f.inflight_pkts == 0 && f.completed.is_some() {
                self.src_active[src].pop_front();
                self.try_send(src, now, q);
                return;
            }
            // Rotate to give other flows a chance (window-limited head).
            if self.src_active[src].len() > 1 {
                let head = self.src_active[src].pop_front().expect("non-empty");
                self.src_active[src].push_back(head);
                let next = *self.src_active[src].front().expect("non-empty");
                if next != head {
                    let nf = &self.flows[next];
                    if nf.to_send > 0 && nf.inflight_pkts < nf.cwnd_pkts {
                        self.try_send(src, now, q);
                    }
                }
            }
            return;
        }
        let dst = f.dst;
        if self.pfc_blocked(dst) {
            // PAUSE: the whole uplink stalls behind this head packet.
            self.src_stalled[src] = true;
            self.pfc_waiters[dst].push(src);
            return;
        }
        let bytes = f.to_send.min(self.cfg.mtu);
        let f = &mut self.flows[flow];
        f.to_send -= bytes;
        f.inflight_pkts += 1;
        let tx = self.pkt_wire_time(bytes);
        self.src_free_at[src] = now + tx;
        // Rotate round-robin.
        let head = self.src_active[src].pop_front().expect("non-empty");
        if self.flows[head].to_send > 0 || self.flows[head].completed.is_none() {
            self.src_active[src].push_back(head);
        }
        let arrive = now + tx + self.cluster.prop_delay + self.cfg.host_latency;
        q.schedule(
            arrive,
            QEv::SwitchArrive {
                pkt: QPkt {
                    flow,
                    bytes,
                    marked: false,
                },
            },
        );
        q.schedule(self.src_free_at[src], QEv::SrcTry { src });
    }

    fn switch_arrive(&mut self, mut pkt: QPkt, now: Time, q: &mut EventQueue<QEv>) {
        let dst = self.flows[pkt.flow].dst;
        let pkt_wire = (pkt.bytes + self.cfg.header_bytes) as u64;
        // Loss handling.
        if let LossMode::DropTail { rto } = self.cfg.loss {
            if self.egress_bytes[dst] + pkt_wire > self.cfg.buffer_bytes {
                match self.cfg.discipline {
                    Discipline::Fifo => {
                        // Drop-tail: the arriving packet is lost.
                        self.drops += 1;
                        q.schedule(
                            now + rto,
                            QEv::Retx {
                                flow: pkt.flow,
                                bytes: pkt.bytes,
                            },
                        );
                        return;
                    }
                    Discipline::SrptPriority => {
                        // pFabric: drop the lowest-priority (largest
                        // remaining) packet among queued + arriving.
                        let worst_queued = self.egress[dst]
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, p)| self.flows[p.flow].remaining())
                            .map(|(i, p)| (i, self.flows[p.flow].remaining(), p.bytes, p.flow));
                        let arriving_rem = self.flows[pkt.flow].remaining();
                        match worst_queued {
                            Some((i, rem, bytes, flow)) if rem > arriving_rem => {
                                self.egress[dst].remove(i);
                                self.egress_bytes[dst] -= (bytes + self.cfg.header_bytes) as u64;
                                self.drops += 1;
                                q.schedule(now + rto, QEv::Retx { flow, bytes });
                                // fall through: enqueue the arriving packet
                            }
                            _ => {
                                self.drops += 1;
                                q.schedule(
                                    now + rto,
                                    QEv::Retx {
                                        flow: pkt.flow,
                                        bytes: pkt.bytes,
                                    },
                                );
                                return;
                            }
                        }
                    }
                }
            }
        }
        // ECN marking at enqueue.
        if let Some(k) = self.cfg.ecn_threshold_bytes {
            if self.egress_bytes[dst] > k {
                pkt.marked = true;
                self.marks += 1;
            }
        }
        self.egress[dst].push_back(pkt);
        self.egress_bytes[dst] += pkt_wire;
        if !self.egress_busy[dst] {
            self.egress_busy[dst] = true;
            q.schedule(now, QEv::PortDrain { dst });
        }
    }

    fn port_drain(&mut self, dst: usize, now: Time, q: &mut EventQueue<QEv>) {
        let pick = match self.cfg.discipline {
            Discipline::Fifo => {
                if self.egress[dst].is_empty() {
                    None
                } else {
                    Some(0)
                }
            }
            Discipline::SrptPriority => self.egress[dst]
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| self.flows[p.flow].remaining())
                .map(|(i, _)| i),
        };
        let Some(idx) = pick else {
            self.egress_busy[dst] = false;
            return;
        };
        let pkt = self.egress[dst].remove(idx).expect("index valid");
        self.egress_bytes[dst] -= (pkt.bytes + self.cfg.header_bytes) as u64;
        let tx = self.pkt_wire_time(pkt.bytes);
        q.schedule(
            now + tx + self.cluster.prop_delay + self.cfg.switch_latency,
            QEv::NodeArrive { pkt },
        );
        q.schedule(now + tx, QEv::PortDrain { dst });
        // PFC resume check.
        if let LossMode::Pfc { xon_bytes, .. } = self.cfg.loss {
            if self.egress_bytes[dst] < xon_bytes && !self.pfc_waiters[dst].is_empty() {
                for src in std::mem::take(&mut self.pfc_waiters[dst]) {
                    self.src_stalled[src] = false;
                    q.schedule(now + tx, QEv::SrcTry { src });
                }
            }
        }
    }

    fn node_arrive(&mut self, pkt: QPkt, now: Time, q: &mut EventQueue<QEv>) {
        let f = &mut self.flows[pkt.flow];
        f.delivered += pkt.bytes;
        f.inflight_pkts = f.inflight_pkts.saturating_sub(1);
        if self.cfg.window_control {
            if pkt.marked {
                f.cwnd_pkts = (f.cwnd_pkts / 2).max(1);
            } else {
                f.cwnd_pkts = (f.cwnd_pkts + 1).min(256);
            }
        }
        if f.delivered >= f.size && f.completed.is_none() {
            f.completed = Some(now + self.cfg.host_latency);
        }
        let src = f.src;
        // The ack opens window space after a return hop.
        q.schedule(now + 2 * self.cluster.prop_delay, QEv::SrcTry { src });
    }
}

impl World for QWorld {
    type Event = QEv;

    fn handle(&mut self, now: Time, ev: QEv, q: &mut EventQueue<QEv>) {
        match ev {
            QEv::Start { flow } => self.activate(flow, q, now),
            QEv::SrcTry { src } => self.try_send(src, now, q),
            QEv::SwitchArrive { pkt } => self.switch_arrive(pkt, now, q),
            QEv::PortDrain { dst } => self.port_drain(dst, now, q),
            QEv::NodeArrive { pkt } => self.node_arrive(pkt, now, q),
            QEv::Retx { flow, bytes } => {
                let f = &mut self.flows[flow];
                f.to_send += bytes;
                f.inflight_pkts = f.inflight_pkts.saturating_sub(1);
                let src = f.src;
                q.schedule(now, QEv::SrcTry { src });
            }
        }
    }
}

impl FabricProtocol for QueueFabric {
    fn name(&self) -> &'static str {
        self.config.name
    }

    fn simulate(&mut self, cluster: &ClusterConfig, flows: &[Flow]) -> SimResult {
        let states: Vec<FlowState> = flows
            .iter()
            .map(|f| {
                let (src, dst) = match f.kind {
                    FlowKind::Write => (f.src, f.dst),
                    FlowKind::Read => (f.dst, f.src),
                };
                FlowState {
                    src,
                    dst,
                    size: f.size,
                    to_send: f.size,
                    delivered: 0,
                    inflight_pkts: 0,
                    cwnd_pkts: self.config.initial_window_pkts,
                    completed: None,
                }
            })
            .collect();
        let n = cluster.nodes;
        let world = QWorld {
            cfg: self.config,
            cluster: *cluster,
            flows: states,
            src_active: vec![VecDeque::new(); n],
            src_free_at: vec![Time::ZERO; n],
            src_stalled: vec![false; n],
            egress: vec![VecDeque::new(); n],
            egress_bytes: vec![0; n],
            egress_busy: vec![false; n],
            pfc_waiters: vec![Vec::new(); n],
            drops: 0,
            marks: 0,
        };
        let mut engine = Engine::new(world);
        for (i, f) in flows.iter().enumerate() {
            // Reads start after the request's unloaded flight to the memory
            // node.
            let start = match f.kind {
                FlowKind::Write => f.arrival,
                FlowKind::Read => {
                    f.arrival
                        + self.config.host_latency
                        + self.config.switch_latency
                        + 2 * cluster.prop_delay
                        + cluster.link.tx_time_bytes(64)
                }
            };
            engine.queue_mut().schedule(start, QEv::Start { flow: i });
        }
        engine.run();
        let world = engine.into_world();
        let outcomes = flows
            .iter()
            .enumerate()
            .map(|(i, &flow)| FlowOutcome {
                flow,
                completed: world.flows[i]
                    .completed
                    .expect("flow must complete before the queue drains"),
            })
            .collect();
        SimResult {
            protocol: self.config.name,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_sim::Bandwidth;

    fn cluster(n: usize) -> ClusterConfig {
        ClusterConfig {
            nodes: n,
            link: Bandwidth::from_gbps(100),
            prop_delay: Duration::from_ns(10),
            pipeline_latency: Duration::from_ns(54),
        }
    }

    fn wflow(id: usize, src: usize, dst: usize, size: u32, at_ns: u64) -> Flow {
        Flow {
            id,
            src,
            dst,
            size,
            arrival: Time::from_ns(at_ns),
            kind: FlowKind::Write,
        }
    }

    #[test]
    fn dctcp_single_flow_completes() {
        let c = cluster(4);
        let flows = vec![wflow(0, 0, 1, 64, 0)];
        let r = QueueFabric::new(QueueConfig::dctcp()).simulate(&c, &flows);
        let mct = r.outcomes[0].mct().as_ns_f64();
        // One packet: host + switch + wire. Order of 1 us.
        assert!((500.0..2000.0).contains(&mct), "DCTCP solo MCT {mct} ns");
    }

    #[test]
    fn all_protocols_complete_all_flows() {
        let c = cluster(8);
        let flows: Vec<Flow> = (0..20)
            .map(|i| {
                wflow(
                    i,
                    i % 4,
                    4 + (i % 4),
                    64 + (i as u32 % 7) * 100,
                    i as u64 * 50,
                )
            })
            .collect();
        for cfg in [
            QueueConfig::dctcp(),
            QueueConfig::pfabric(),
            QueueConfig::pfc_dcqcn(),
        ] {
            let r = QueueFabric::new(cfg).simulate(&c, &flows);
            assert_eq!(r.outcomes.len(), 20, "{}", cfg.name);
        }
    }

    #[test]
    fn incast_builds_queueing_delay() {
        let c = cluster(32);
        // 16-to-1 incast: FIFO queueing must inflate the later arrivals.
        let flows: Vec<Flow> = (0..16).map(|i| wflow(i, i, 31, 1000, 0)).collect();
        let r = QueueFabric::new(QueueConfig::dctcp()).simulate(&c, &flows);
        let solo = {
            let f = vec![wflow(0, 0, 31, 1000, 0)];
            QueueFabric::new(QueueConfig::dctcp())
                .simulate(&c, &f)
                .outcomes[0]
                .mct()
        };
        let worst = r.outcomes.iter().map(|o| o.mct()).max().unwrap();
        assert!(
            worst.as_ns_f64() > 1.5 * solo.as_ns_f64(),
            "incast should queue: worst {worst} vs solo {solo}"
        );
    }

    #[test]
    fn pfabric_finishes_mouse_before_elephant() {
        let c = cluster(4);
        let flows = vec![
            wflow(0, 0, 2, 200_000, 0), // elephant
            wflow(1, 1, 2, 1000, 100),  // mouse
        ];
        let r = QueueFabric::new(QueueConfig::pfabric()).simulate(&c, &flows);
        assert!(
            r.outcomes[1].completed < r.outcomes[0].completed,
            "SRPT must finish the mouse first"
        );
    }

    #[test]
    fn pfc_is_lossless() {
        let c = cluster(32);
        let flows: Vec<Flow> = (0..24).map(|i| wflow(i, i, 31, 20_000, 0)).collect();
        let mut fab = QueueFabric::new(QueueConfig::pfc_dcqcn());
        let r = fab.simulate(&c, &flows);
        // Conservation: every flow delivered exactly its size (no dangling
        // retransmissions => completion implies full delivery).
        assert_eq!(r.outcomes.len(), 24);
    }

    #[test]
    fn severe_incast_hurts_dctcp_more_than_pfabric_mice() {
        let c = cluster(64);
        // 32 senders, one receiver, short messages: DCTCP queues FIFO,
        // pFabric serves SRPT so the short ones get out fast.
        let flows: Vec<Flow> = (0..32).map(|i| wflow(i, i, 63, 640, 0)).collect();
        let dctcp = QueueFabric::new(QueueConfig::dctcp()).simulate(&c, &flows);
        let pfab = QueueFabric::new(QueueConfig::pfabric()).simulate(&c, &flows);
        let mean = |r: &SimResult| {
            r.outcomes.iter().map(|o| o.mct().as_ns_f64()).sum::<f64>() / r.outcomes.len() as f64
        };
        // Uniform sizes: both serialize, so means are comparable; pFabric
        // must not be pathologically worse.
        assert!(mean(&pfab) <= mean(&dctcp) * 1.5);
    }

    #[test]
    fn read_flows_travel_reverse_direction() {
        let c = cluster(4);
        let flows = vec![Flow {
            id: 0,
            src: 0,
            dst: 1,
            size: 64,
            arrival: Time::ZERO,
            kind: FlowKind::Read,
        }];
        let r = QueueFabric::new(QueueConfig::dctcp()).simulate(&c, &flows);
        // Read = request hop + response flow: strictly slower than a write.
        let w = vec![wflow(0, 1, 0, 64, 0)];
        let rw = QueueFabric::new(QueueConfig::dctcp()).simulate(&c, &w);
        assert!(r.outcomes[0].mct() > rw.outcomes[0].mct());
    }
}
