//! Latency models of the comparator network stacks (the non-EDM columns of
//! Table 1, and the CXL numbers used by Figure 7).
//!
//! These are the same [`FabricLatency`] compositions as EDM's, with the
//! per-layer constants the paper measured on the testbed:
//!
//! * protocol stack datapath: 666.2 ns (hardware TCP/IP), 230.2 ns
//!   (RoCEv2), 0 (raw Ethernet);
//! * Ethernet MAC pass: 7.68 ns; standard PCS pass: 7.68 ns;
//! * layer-2 forwarding on the Tofino: 400 ns per traversal
//!   (parse 87 + match-action 202 + packet manager 93 + crossbar 18);
//! * reads traverse everything twice (request + response).

use edm_core::latency::FabricLatency;
use edm_sim::Duration;

/// One Ethernet MAC traversal on the testbed: 7.68 ns.
pub const MAC_PASS: Duration = Duration::from_ps(7_680);
/// One standard (non-EDM) PCS traversal: 7.68 ns.
pub const PCS_PASS: Duration = Duration::from_ps(7_680);
/// One layer-2 forwarding pipeline traversal: 400 ns.
pub const L2_FORWARDING: Duration = Duration::from_ns(400);
/// Hardware-offloaded TCP/IP datapath per message pass: 666.2 ns.
pub const TCP_STACK_PASS: Duration = Duration::from_ps(666_200);
/// RoCEv2 datapath per message pass: 230.2 ns.
pub const ROCE_STACK_PASS: Duration = Duration::from_ps(230_200);

fn mac_stack(
    name: &'static str,
    op: &'static str,
    protocol_pass: Duration,
    passes: u64, // 2 for read (request+response), 1 for write
) -> FabricLatency {
    FabricLatency {
        stack: name,
        op,
        compute_protocol: passes * protocol_pass,
        compute_mac: passes * MAC_PASS,
        compute_pcs: passes * PCS_PASS,
        switch_l2: passes * L2_FORWARDING,
        switch_mac: 2 * passes * MAC_PASS,
        switch_pcs: 2 * passes * PCS_PASS,
        memory_protocol: passes * protocol_pass,
        memory_mac: passes * MAC_PASS,
        memory_pcs: passes * PCS_PASS,
        pma_pmd_passes: 4 * passes,
        propagation_hops: 2 * passes,
    }
}

/// Hardware TCP/IP stack, remote read.
pub fn tcp_read() -> FabricLatency {
    mac_stack("TCP/IP (hw)", "read", TCP_STACK_PASS, 2)
}

/// Hardware TCP/IP stack, remote write.
pub fn tcp_write() -> FabricLatency {
    mac_stack("TCP/IP (hw)", "write", TCP_STACK_PASS, 1)
}

/// RoCEv2 (RDMA over Converged Ethernet), remote read.
pub fn rocev2_read() -> FabricLatency {
    mac_stack("RoCEv2", "read", ROCE_STACK_PASS, 2)
}

/// RoCEv2, remote write.
pub fn rocev2_write() -> FabricLatency {
    mac_stack("RoCEv2", "write", ROCE_STACK_PASS, 1)
}

/// Raw Ethernet (MAC + PHY only, no transport), remote read.
pub fn raw_ethernet_read() -> FabricLatency {
    mac_stack("Raw Ethernet", "read", Duration::ZERO, 2)
}

/// Raw Ethernet, remote write.
pub fn raw_ethernet_write() -> FabricLatency {
    mac_stack("Raw Ethernet", "write", Duration::ZERO, 1)
}

/// CXL single-switch fabric latency (from Pond \[41\] as cited in §4.2.2):
/// EDM's Figure 7 comparison point. Reads traverse the fabric twice.
pub mod cxl {
    use edm_sim::Duration;

    /// Unloaded CXL remote read latency through one switch.
    pub const READ: Duration = Duration::from_ns(330);
    /// Unloaded CXL remote write latency through one switch.
    pub const WRITE: Duration = Duration::from_ns(220);
    /// Additional latency per extra CXL switch hop (§2.2: ~100 ns).
    pub const PER_EXTRA_HOP: Duration = Duration::from_ns(100);
}

/// Local DDR4 access latency including the on-chip path (~82 ns, the
/// baseline of Figure 7).
pub const LOCAL_DRAM: Duration = Duration::from_ns(82);

#[cfg(test)]
mod tests {
    use super::*;
    use edm_core::latency::{edm_read, edm_write};

    #[test]
    fn tcp_totals_match_table1() {
        assert_eq!(tcp_read().total().as_ps(), 3_779_680); // 3.79 us
        assert_eq!(tcp_write().total().as_ps(), 1_889_840); // 1.89 us
    }

    #[test]
    fn rocev2_totals_match_table1() {
        // Table 1: 2.03 us read, 1.02 us write.
        assert_eq!(rocev2_read().total().as_ps(), 2_035_680);
        assert_eq!(rocev2_write().total().as_ps(), 1_017_840);
    }

    #[test]
    fn raw_ethernet_totals_match_table1() {
        // Table 1: 1.11 us read, 557.44 ns write.
        assert_eq!(raw_ethernet_read().total().as_ps(), 1_114_880);
        assert_eq!(raw_ethernet_write().total().as_ps(), 557_440);
    }

    #[test]
    fn speedup_factors_match_paper() {
        // §4.2.1: read (write) latency of EDM is 3.7x (1.9x), 6.8x (3.4x),
        // 12.7x (6.4x) lower than raw Ethernet, RoCEv2, TCP/IP.
        let er = edm_read().total().as_ps() as f64;
        let ew = edm_write().total().as_ps() as f64;
        let factors = [
            (raw_ethernet_read().total().as_ps() as f64 / er, 3.7),
            (raw_ethernet_write().total().as_ps() as f64 / ew, 1.9),
            (rocev2_read().total().as_ps() as f64 / er, 6.8),
            (rocev2_write().total().as_ps() as f64 / ew, 3.4),
            (tcp_read().total().as_ps() as f64 / er, 12.7),
            (tcp_write().total().as_ps() as f64 / ew, 6.4),
        ];
        for (got, want) in factors {
            assert!(
                (got - want).abs() / want < 0.1,
                "speedup {got:.2} vs paper {want}"
            );
        }
    }

    #[test]
    fn reads_cost_twice_writes_for_mac_stacks() {
        assert_eq!(
            tcp_read().network_stack_latency().as_ps(),
            2 * tcp_write().network_stack_latency().as_ps()
        );
    }

    #[test]
    fn cxl_is_comparable_to_edm_unloaded() {
        // §4.2.2: EDM "within 1.3x the latency of CXL" in the unloaded
        // testbed.
        let cxl_avg = (cxl::READ.as_ps() + cxl::WRITE.as_ps()) as f64 / 2.0;
        let edm_avg = (edm_read().total().as_ps() + edm_write().total().as_ps()) as f64 / 2.0;
        let ratio = edm_avg / cxl_avg;
        assert!(
            (0.9..1.3).contains(&ratio),
            "EDM/CXL unloaded ratio {ratio}"
        );
    }
}
