//! IRD — an idealized receiver-driven proactive transport (§4.3
//! baseline ii).
//!
//! IRD combines the best features of Homa/pHost/NDP/ExpressPass as the
//! paper defines it: receivers learn of new inbound messages in zero time
//! and schedule their downlinks with per-chunk credits in SRPT order,
//! while senders blind-transmit the first RTT's worth of data
//! *unscheduled* (Homa/pHost semantics — for the 64 B microbenchmark
//! messages, the whole message is unscheduled and the receiver's edge
//! queue absorbs contention).
//!
//! The decentralization flaw appears on the scheduled portion of large
//! messages: a receiver does not know whether the sender it credits is
//! busy serving *another* receiver, so conflicting credits waste downlink
//! slots — the bandwidth under-utilization that makes IRD degrade at
//! high load in Figure 8a.

use edm_core::sim::{ClusterConfig, FabricProtocol, Flow, FlowKind, FlowOutcome, SimResult};
use edm_sim::{Duration, Engine, EventQueue, Time, World};

/// IRD configuration.
#[derive(Debug, Clone, Copy)]
pub struct IrdConfig {
    /// Credit chunk size in bytes.
    pub chunk_bytes: u32,
    /// Unscheduled (blind) bytes each message may send before credits
    /// (one bandwidth-delay product, like Homa's RTTbytes).
    pub unscheduled_bytes: u32,
    /// Per-packet wire overhead.
    pub header_bytes: u32,
}

impl Default for IrdConfig {
    fn default() -> Self {
        IrdConfig {
            chunk_bytes: 256,
            unscheduled_bytes: 1024,
            header_bytes: 40,
        }
    }
}

/// The IRD protocol instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct IrdProtocol {
    /// Configuration.
    pub config: IrdConfig,
}

#[derive(Debug, Clone, Copy)]
enum IEv {
    /// Flow becomes active: blind-send the unscheduled window and announce
    /// the remainder to the receiver (zero-time notification, idealized).
    Start { flow: usize },
    /// Sender emits its next unscheduled chunk of `flow`.
    BlindNext { flow: usize },
    /// A chunk reaches the receiver's edge (switch egress) queue.
    EdgeArrive { flow: usize, bytes: u32 },
    /// The receiver edge port finishes serializing a chunk.
    EdgeDrain { dst: usize },
    /// Receiver `dst` issues its next credit slot.
    ReceiverSlot { dst: usize },
    /// A credit reaches a sender.
    CreditArrive { flow: usize, bytes: u32 },
    /// A chunk's last byte lands at the destination node.
    NodeArrive { flow: usize, bytes: u32 },
}

struct IrdWorld {
    cfg: IrdConfig,
    cluster: ClusterConfig,
    /// (data_src, data_dst, size).
    flows: Vec<(usize, usize, u32)>,
    /// Sender-side unscheduled bytes still to blind-send.
    blind_remaining: Vec<u32>,
    /// Receiver-side scheduled bytes still to credit.
    to_credit: Vec<u32>,
    /// Conflict back-off: don't re-credit this flow before this time.
    defer_until: Vec<Time>,
    delivered: Vec<u32>,
    completed: Vec<Option<Time>>,
    /// Pending scheduled flows per receiver.
    pending: Vec<Vec<usize>>,
    /// Sender uplink next-free time.
    src_free_at: Vec<Time>,
    /// Receiver downlink (edge port) next-free time: shared by
    /// unscheduled arrivals and credited slots.
    edge_free_at: Vec<Time>,
    /// Receiver edge FIFO of (flow, bytes) awaiting serialization.
    edge_q: Vec<std::collections::VecDeque<(usize, u32)>>,
    edge_busy: Vec<bool>,
    /// Wasted credits (sender was busy): the under-utilization metric.
    wasted_credits: u64,
    /// Deduplication of pending ReceiverSlot wake-ups per destination.
    slot_wakeup: Vec<Option<Time>>,
}

impl IrdWorld {
    fn chunk_time(&self, bytes: u32) -> Duration {
        self.cluster
            .link
            .tx_time_bytes((bytes + self.cfg.header_bytes) as u64)
    }

    fn half_hop(&self) -> Duration {
        self.cluster.pipeline_latency / 2 + self.cluster.prop_delay
    }

    /// Schedules a ReceiverSlot wake-up at `at`, deduplicating so each
    /// destination has at most one outstanding wake-up.
    fn wake_receiver(&mut self, dst: usize, at: Time, q: &mut EventQueue<IEv>) {
        if self.slot_wakeup[dst].is_none_or(|t| at < t) {
            self.slot_wakeup[dst] = Some(at);
            q.schedule(at, IEv::ReceiverSlot { dst });
        }
    }

    fn blind_next(&mut self, flow: usize, now: Time, q: &mut EventQueue<IEv>) {
        if self.blind_remaining[flow] == 0 {
            return;
        }
        let (src, _, _) = self.flows[flow];
        let start = now.max(self.src_free_at[src]);
        let bytes = self.blind_remaining[flow].min(self.cfg.chunk_bytes);
        self.blind_remaining[flow] -= bytes;
        let tx = self.chunk_time(bytes);
        self.src_free_at[src] = start + tx;
        q.schedule(
            start + tx + self.cluster.prop_delay + self.cluster.pipeline_latency / 2,
            IEv::EdgeArrive { flow, bytes },
        );
        if self.blind_remaining[flow] > 0 {
            q.schedule(start + tx, IEv::BlindNext { flow });
        }
    }

    fn edge_drain(&mut self, dst: usize, now: Time, q: &mut EventQueue<IEv>) {
        let Some((flow, bytes)) = self.edge_q[dst].pop_front() else {
            self.edge_busy[dst] = false;
            return;
        };
        let tx = self.chunk_time(bytes);
        self.edge_free_at[dst] = now + tx;
        q.schedule(
            now + tx + self.cluster.prop_delay,
            IEv::NodeArrive { flow, bytes },
        );
        q.schedule(now + tx, IEv::EdgeDrain { dst });
    }

    fn receiver_slot(&mut self, dst: usize, now: Time, q: &mut EventQueue<IEv>) {
        if self.slot_wakeup[dst] == Some(now) {
            self.slot_wakeup[dst] = None;
        }
        if now < self.edge_free_at[dst] {
            // Downlink busy (e.g. unscheduled traffic): revisit when free.
            self.wake_receiver(dst, self.edge_free_at[dst], q);
            return;
        }
        // SRPT across this receiver's schedulable flows that are not in
        // conflict back-off.
        let Some(&flow) = self.pending[dst]
            .iter()
            .filter(|&&f| self.to_credit[f] > 0 && self.defer_until[f] <= now)
            .min_by_key(|&&f| self.to_credit[f])
        else {
            // Nothing ready: retry when the earliest back-off expires.
            if let Some(t) = self.pending[dst]
                .iter()
                .filter(|&&f| self.to_credit[f] > 0)
                .map(|&f| self.defer_until[f])
                .min()
            {
                self.wake_receiver(dst, t.max(now), q);
            }
            return;
        };
        let bytes = self.to_credit[flow].min(self.cfg.chunk_bytes);
        self.to_credit[flow] -= bytes;
        if self.to_credit[flow] == 0 {
            self.pending[dst].retain(|&f| f != flow);
        }
        // The receiver reserves its downlink slot for this chunk whether or
        // not the sender honours the credit — the decentralized gamble.
        let slot = self.chunk_time(bytes);
        self.edge_free_at[dst] = now + slot;
        q.schedule(now + self.half_hop(), IEv::CreditArrive { flow, bytes });
        self.wake_receiver(dst, now + slot, q);
    }

    fn credit_arrive(&mut self, flow: usize, bytes: u32, now: Time, q: &mut EventQueue<IEv>) {
        let (src, dst, _) = self.flows[flow];
        if now < self.src_free_at[src] {
            // Sender busy on another receiver: credit wasted; re-credit the
            // bytes and back the flow off for one chunk time so the
            // receiver's next slot can try a different sender.
            self.wasted_credits += 1;
            self.to_credit[flow] += bytes;
            self.defer_until[flow] = now + self.chunk_time(bytes);
            if !self.pending[dst].contains(&flow) {
                self.pending[dst].push(flow);
            }
            self.wake_receiver(dst, self.edge_free_at[dst].max(now), q);
            return;
        }
        let tx = self.chunk_time(bytes);
        self.src_free_at[src] = now + tx;
        // Credited chunks bypass the edge queue (the receiver reserved the
        // slot) and land after the data flight.
        q.schedule(
            now + tx + 2 * self.cluster.prop_delay + self.cluster.pipeline_latency / 2,
            IEv::NodeArrive { flow, bytes },
        );
    }
}

impl World for IrdWorld {
    type Event = IEv;

    fn handle(&mut self, now: Time, ev: IEv, q: &mut EventQueue<IEv>) {
        match ev {
            IEv::Start { flow } => {
                let (_, dst, size) = self.flows[flow];
                let unsched = size.min(self.cfg.unscheduled_bytes);
                self.blind_remaining[flow] = unsched;
                self.to_credit[flow] = size - unsched;
                self.blind_next(flow, now, q);
                if self.to_credit[flow] > 0 {
                    self.pending[dst].push(flow);
                    if now >= self.edge_free_at[dst] {
                        self.receiver_slot(dst, now, q);
                    } else {
                        self.wake_receiver(dst, self.edge_free_at[dst], q);
                    }
                }
            }
            IEv::BlindNext { flow } => self.blind_next(flow, now, q),
            IEv::EdgeArrive { flow, bytes } => {
                let dst = self.flows[flow].1;
                self.edge_q[dst].push_back((flow, bytes));
                if !self.edge_busy[dst] {
                    self.edge_busy[dst] = true;
                    q.schedule(now.max(self.edge_free_at[dst]), IEv::EdgeDrain { dst });
                }
            }
            IEv::EdgeDrain { dst } => self.edge_drain(dst, now, q),
            IEv::ReceiverSlot { dst } => self.receiver_slot(dst, now, q),
            IEv::CreditArrive { flow, bytes } => self.credit_arrive(flow, bytes, now, q),
            IEv::NodeArrive { flow, bytes } => {
                self.delivered[flow] += bytes;
                let size = self.flows[flow].2;
                if self.delivered[flow] >= size && self.completed[flow].is_none() {
                    self.completed[flow] = Some(now);
                }
            }
        }
    }
}

impl FabricProtocol for IrdProtocol {
    fn name(&self) -> &'static str {
        "IRD"
    }

    fn simulate(&mut self, cluster: &ClusterConfig, flows: &[Flow]) -> SimResult {
        let n = cluster.nodes;
        let dirs: Vec<(usize, usize, u32)> = flows
            .iter()
            .map(|f| match f.kind {
                FlowKind::Write => (f.src, f.dst, f.size),
                FlowKind::Read => (f.dst, f.src, f.size),
            })
            .collect();
        let world = IrdWorld {
            cfg: self.config,
            cluster: *cluster,
            blind_remaining: vec![0; flows.len()],
            to_credit: vec![0; flows.len()],
            defer_until: vec![Time::ZERO; flows.len()],
            delivered: vec![0; flows.len()],
            completed: vec![None; flows.len()],
            flows: dirs,
            pending: vec![Vec::new(); n],
            src_free_at: vec![Time::ZERO; n],
            edge_free_at: vec![Time::ZERO; n],
            edge_q: vec![std::collections::VecDeque::new(); n],
            edge_busy: vec![false; n],
            wasted_credits: 0,
            slot_wakeup: vec![None; n],
        };
        let mut engine = Engine::new(world);
        for (i, f) in flows.iter().enumerate() {
            // Reads begin at the memory node after the request's flight.
            let start = match f.kind {
                FlowKind::Write => f.arrival,
                FlowKind::Read => {
                    f.arrival
                        + cluster.pipeline_latency
                        + 2 * cluster.prop_delay
                        + cluster.link.tx_time_bytes(48)
                }
            };
            engine.queue_mut().schedule(start, IEv::Start { flow: i });
        }
        engine.run();
        let world = engine.into_world();
        let outcomes = flows
            .iter()
            .enumerate()
            .map(|(i, &flow)| FlowOutcome {
                flow,
                completed: world.completed[i].expect("flow completes"),
            })
            .collect();
        SimResult {
            protocol: "IRD",
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_sim::Bandwidth;

    fn cluster(n: usize) -> ClusterConfig {
        ClusterConfig {
            nodes: n,
            link: Bandwidth::from_gbps(100),
            prop_delay: Duration::from_ns(10),
            pipeline_latency: Duration::from_ns(54),
        }
    }

    fn wflow(id: usize, src: usize, dst: usize, size: u32, at_ns: u64) -> Flow {
        Flow {
            id,
            src,
            dst,
            size,
            arrival: Time::from_ns(at_ns),
            kind: FlowKind::Write,
        }
    }

    #[test]
    fn solo_small_flow_is_fast() {
        let c = cluster(4);
        let r = IrdProtocol::default().simulate(&c, &[wflow(0, 0, 1, 64, 0)]);
        let ns = r.outcomes[0].mct().as_ns_f64();
        assert!((40.0..250.0).contains(&ns), "IRD solo MCT {ns} ns");
    }

    #[test]
    fn small_messages_are_fully_unscheduled() {
        // A 64 B message never waits for credits: its MCT is close to a
        // one-way flight even with a cold receiver.
        let c = cluster(4);
        let r = IrdProtocol::default().simulate(&c, &[wflow(0, 0, 1, 64, 0)]);
        let flight =
            (c.pipeline_latency + 2 * c.prop_delay + c.link.tx_time_bytes(64 + 40)).as_ns_f64();
        let mct = r.outcomes[0].mct().as_ns_f64();
        assert!(
            mct < flight * 2.0,
            "unscheduled MCT {mct} vs flight {flight}"
        );
    }

    #[test]
    fn incast_queues_at_receiver_edge() {
        let c = cluster(16);
        let flows: Vec<Flow> = (0..8).map(|i| wflow(i, i, 15, 256, 0)).collect();
        let r = IrdProtocol::default().simulate(&c, &flows);
        let mcts: Vec<f64> = r.outcomes.iter().map(|o| o.mct().as_ns_f64()).collect();
        let max = mcts.iter().cloned().fold(0.0, f64::max);
        let min = mcts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 2.0 * min, "edge queue must serialize the incast");
    }

    #[test]
    fn large_flows_use_credits_and_complete() {
        let c = cluster(4);
        let r = IrdProtocol::default().simulate(&c, &[wflow(0, 0, 1, 100_000, 0)]);
        let mct = r.outcomes[0].mct();
        assert!(
            mct >= c.link.tx_time_bytes(100_000),
            "cannot beat line rate"
        );
    }

    #[test]
    fn sender_conflicts_waste_downlink_slots() {
        // One sender, two receivers, both crediting large flows: total
        // completion must exceed the perfect interleave because wasted
        // slots cannot be reclaimed.
        let c = cluster(4);
        let flows = vec![wflow(0, 0, 1, 40_960, 0), wflow(1, 0, 2, 40_960, 0)];
        let r = IrdProtocol::default().simulate(&c, &flows);
        let perfect = c.link.tx_time_bytes(2 * (40_960 + 40 * 160)).as_ns_f64();
        let worst = r
            .outcomes
            .iter()
            .map(|o| o.mct().as_ns_f64())
            .fold(0.0, f64::max);
        assert!(
            worst > perfect,
            "conflicts must cost: worst {worst} vs perfect {perfect}"
        );
    }

    #[test]
    fn srpt_order_for_scheduled_portions() {
        let c = cluster(4);
        let flows = vec![
            wflow(0, 0, 3, 200_000, 0), // elephant (mostly scheduled)
            wflow(1, 1, 3, 4_096, 500), // shorter scheduled flow
        ];
        let r = IrdProtocol::default().simulate(&c, &flows);
        assert!(
            r.outcomes[1].completed < r.outcomes[0].completed,
            "short flow must finish first under SRPT credits"
        );
    }

    #[test]
    fn all_flows_complete_under_load() {
        let c = cluster(16);
        let flows: Vec<Flow> = (0..64)
            .map(|i| {
                wflow(
                    i,
                    i % 8,
                    8 + (i % 8),
                    64 + 512 * (i as u32 % 5),
                    (i as u64) * 30,
                )
            })
            .collect();
        let r = IrdProtocol::default().simulate(&c, &flows);
        assert_eq!(r.outcomes.len(), 64);
    }
}
